// Elastic multi-step driver: DisMASTD streaming across view changes.
//
// The static Step/StepJob path assumes a fixed worker set for the whole
// run. ElasticJob drives a sequence of snapshot steps over an elastic
// cluster whose membership may change while the stream is running:
//
//   - A rank crashing mid-step surfaces as a rank-attributed
//     ErrPeerDown on every survivor (drain-then-fail mailboxes plus
//     epoch revocation break transitive collective blocks). Survivors
//     agree on the shrunken view, rebalance the partitioning with
//     minimal slice movement (partition.Rebalance), absorb the dead
//     rank's factor rows from their local replicas — the degraded-mode
//     policy: the freshest surviving copy, at worst one aborted sweep
//     stale — migrate the few rows whose surviving owner changed,
//     refresh the row subscriptions, re-establish the Gram state, and
//     restart the step's ALS sweeps warm. No wire bytes are spent on
//     rows that did not change owner.
//
//   - Joins and drains are admitted at step fences, where every member
//     holds the full synced state: a joiner warm-starts from a single
//     targeted state transfer (no repartition shuffle — the next step
//     plans for the grown view from scratch, since snapshot dimensions
//     grow anyway), and a drainer leaves after view agreement with
//     nothing to hand off.
//
// Membership never changes the maths: every epoch's sweep is the same
// SPMD computation as the static path (sweepOnce/establishGrams are
// shared), only bound to a different plan. A run with no membership
// events reproduces the static per-step results bitwise.

package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"dismastd/internal/cluster"
	"dismastd/internal/dplan"
	"dismastd/internal/dtd"
	"dismastd/internal/mat"
	obscluster "dismastd/internal/obs/cluster"
	"dismastd/internal/tensor"
)

// ErrScriptedCrash is the error a scripted victim rank dies with in
// chaos runs; survivors observe it only as ErrPeerDown.
var ErrScriptedCrash = errors.New("core: scripted crash")

// ElasticOptions configures a multi-step elastic run. The embedded
// Options provide the per-step algorithm parameters; Workers and Parts
// are ignored (each epoch plans for its view size, one partition per
// member, which is what keeps live re-partitioning minimal).
type ElasticOptions struct {
	Options

	World   int // total ranks in the world cluster, members + spares
	Members int // initial members, world ranks 0..Members-1

	// Chaos script, known to every rank (deterministic admission; the
	// join/drain request RPCs are still exercised and polled at fences).
	// KillAtStep[s] crashes that world rank at the start of sweep
	// KillSweep of step s. JoinAtStep[s] admits that spare world rank at
	// step s's fence; DrainAtStep[s] retires that member there.
	KillAtStep  map[int]int
	KillSweep   int // default 1
	JoinAtStep  map[int]int
	DrainAtStep map[int]int

	// SlowRanks scripts heterogeneous hardware: world rank → extra
	// compute nanoseconds per unit of planned load, burned inside a
	// compute-phase span every step. The observability plane sees the
	// padding exactly as it would a member with slower cores, which is
	// what the rebalance chaos tests use to provoke the detector
	// deterministically.
	SlowRanks map[int]float64

	// Checkpoint, when set, is called by view rank 0 at every step fence
	// with the fully synced pre-step state.
	Checkpoint func(step int, st *dtd.State) error

	// Plane, when set, turns on the cluster observability plane: every
	// member gathers its metric deltas, runtime gauges, and fresh spans
	// to the view coordinator after each step's state sync, and the
	// coordinator's imbalance detector broadcasts its verdict back.
	Plane *obscluster.Config

	// RebalanceOnImbalance arms the plane's detector: when the smoothed
	// per-rank imbalance CV crosses the threshold, the next membership
	// fence bumps the view epoch (no membership change) and the stream
	// re-partitions with the detector's cost weights — a live rebalance
	// of a skewed stream. Requires Plane.
	RebalanceOnImbalance bool

	// PlaneReady, when set, is called once per world rank with that
	// rank's freshly built plane, before any fence runs — the hook
	// cmd/worker uses to mount /debug/cluster.
	PlaneReady func(world int, p *obscluster.Plane)
}

// TransitionStats records one membership transition (a fence-admitted
// join/drain or a mid-step failure recovery).
type TransitionStats struct {
	Step  int
	Epoch int64
	Dead  []int // world ranks lost mid-step
	Join  []int // world ranks admitted
	Leave []int // world ranks drained

	MovedRows    int   // factor rows shipped between surviving owners
	AbsorbedRows int   // dead ranks' rows adopted from local replicas
	BytesSent    int64 // wire bytes of the transition, summed over ranks

	// Rebalance marks an epoch bump triggered by the imbalance detector
	// rather than a membership change: same members, new plan weights.
	// CV is the detector statistic that fired it. Rebalances cost zero
	// migration bytes — at fences every member already holds the full
	// synced state, so the next step simply plans differently.
	Rebalance bool
	CV        float64
}

// ElasticJob drives len(snapshots) streaming steps over an elastic
// world cluster. Build one with NewElasticJob, run RunWorker once per
// world rank on a cluster with elastic semantics, then read Result.
type ElasticJob struct {
	opts      ElasticOptions
	prev      *dtd.State
	snapshots []*tensor.Tensor

	mu          sync.Mutex
	final       *dtd.State
	finalLoss   float64
	byEpoch     map[int64]*TransitionStats
	transitions []*TransitionStats
}

// NewElasticJob validates the script and prepares the run. prev and the
// snapshots are shared read-only across ranks.
func NewElasticJob(prev *dtd.State, snapshots []*tensor.Tensor, o ElasticOptions) (*ElasticJob, error) {
	if len(snapshots) == 0 {
		return nil, errors.New("core: elastic run needs at least one snapshot")
	}
	if o.Members <= 0 || o.World < o.Members {
		return nil, fmt.Errorf("core: world %d with %d initial members", o.World, o.Members)
	}
	if o.KillSweep <= 0 {
		o.KillSweep = 1
	}
	probe := o.Options
	probe.Workers = o.Members
	if _, err := probe.withDefaults(); err != nil {
		return nil, err
	}
	joiners := map[int]bool{}
	for s, r := range o.JoinAtStep {
		if s < 0 || s >= len(snapshots) {
			return nil, fmt.Errorf("core: join scripted at step %d of %d", s, len(snapshots))
		}
		if r < o.Members || r >= o.World {
			return nil, fmt.Errorf("core: scripted joiner %d is not a spare of world %d", r, o.World)
		}
		if joiners[r] {
			return nil, fmt.Errorf("core: spare %d scripted to join twice", r)
		}
		joiners[r] = true
	}
	for s, r := range o.KillAtStep {
		if s < 0 || s >= len(snapshots) || r < 0 || r >= o.World {
			return nil, fmt.Errorf("core: kill of rank %d scripted at step %d", r, s)
		}
	}
	for s, r := range o.DrainAtStep {
		if s < 0 || s >= len(snapshots) || r < 0 || r >= o.World {
			return nil, fmt.Errorf("core: drain of rank %d scripted at step %d", r, s)
		}
	}
	for r, h := range o.SlowRanks {
		if r < 0 || r >= o.World || h < 0 || math.IsNaN(h) {
			return nil, fmt.Errorf("core: scripted handicap %v on rank %d of world %d", h, r, o.World)
		}
	}
	if o.RebalanceOnImbalance && o.Plane == nil {
		return nil, errors.New("core: RebalanceOnImbalance requires a Plane config")
	}
	return &ElasticJob{
		opts:      o,
		prev:      prev,
		snapshots: snapshots,
		byEpoch:   map[int64]*TransitionStats{},
	}, nil
}

// Result returns the final state (assembled on the final view's rank
// 0), the last step's loss, and the membership transitions in epoch
// order. Valid after every world rank's RunWorker has returned.
func (j *ElasticJob) Result() (*dtd.State, float64, []TransitionStats, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.final == nil {
		return nil, 0, nil, ErrNoResult
	}
	sort.Slice(j.transitions, func(a, b int) bool { return j.transitions[a].Epoch < j.transitions[b].Epoch })
	out := make([]TransitionStats, len(j.transitions))
	for i, t := range j.transitions {
		out[i] = *t
	}
	return j.final, j.finalLoss, out, nil
}

// stepOpts derives the per-step Options for the view: one partition per
// member, so re-partitioning stays a per-member diff, plus the current
// detector cost weights mapped from world ranks into view-rank order.
func (j *ElasticJob) stepOpts(v cluster.View, rs *rankStream) Options {
	opts := j.opts.Options
	opts.Workers = v.Size()
	opts.Parts = v.Size()
	if rs.weightByWorld != nil {
		rw := make([]float64, v.Size())
		for i, world := range v.Members {
			rw[i] = rs.weightByWorld[world]
		}
		opts.RankWeights = rw
	}
	return opts
}

// rankStream is one member's mutable stream-scope state living outside
// the per-step jobs: its observability plane and the detector-derived
// cost weights. Weights are keyed by world rank — the identity that
// survives view changes — and every member's copy evolves identically
// because it is driven only by the broadcast fence decisions (joiners
// receive the current weights in their boot transfer).
type rankStream struct {
	plane         *obscluster.Plane
	weightByWorld []float64 // nil until a rebalance first fires
	pending       bool      // detector fired; bump the epoch at the next fence
	cv            float64   // CV of the firing decision
}

// newRankStream builds the per-rank stream state; w is the root (world)
// worker.
func (j *ElasticJob) newRankStream(w *cluster.Worker) *rankStream {
	rs := &rankStream{}
	if j.opts.Plane != nil {
		cfg := *j.opts.Plane
		cfg.Detector.Arm = cfg.Detector.Arm || j.opts.RebalanceOnImbalance
		rs.plane = obscluster.NewPlane(cfg, w.Obs(), w.Size())
		if j.opts.PlaneReady != nil {
			j.opts.PlaneReady(w.Rank(), rs.plane)
		}
	}
	return rs
}

// obsFence runs the plane's fence round after a step's state sync. The
// detector input is the step plan's per-rank planned load scaled by the
// weights it was planned under — the modelled cost — so a successful
// weighted rebalance reads as balanced and the detector re-arms only on
// fresh skew. A fire stages the epoch bump for the next membership
// fence and folds the broadcast weights into the world-keyed table.
func (j *ElasticJob) obsFence(vw *cluster.Worker, v cluster.View, rs *rankStream, job *StepJob, s int) error {
	loads := job.plan.RankLoads()
	for i, rw := range job.opts.RankWeights {
		loads[i] *= rw
	}
	dec, err := rs.plane.Fence(vw, v.Members, v.Epoch, s, loads)
	if err != nil {
		return err
	}
	if dec.Fire {
		if rs.weightByWorld == nil {
			rs.weightByWorld = make([]float64, j.opts.World)
			for i := range rs.weightByWorld {
				rs.weightByWorld[i] = 1
			}
		}
		for i, world := range v.Members {
			rs.weightByWorld[world] = dec.Weights[i]
		}
		rs.pending = true
		rs.cv = dec.CV
	}
	return nil
}

// joinStep reports the step at which the given spare is scripted to
// join, or -1.
func (j *ElasticJob) joinStep(world int) int {
	for s, r := range j.opts.JoinAtStep {
		if r == world {
			return s
		}
	}
	return -1
}

// dimsBefore returns the state dimensions entering step s.
func (j *ElasticJob) dimsBefore(s int) []int {
	if s == 0 {
		return j.prev.Dims
	}
	return j.snapshots[s-1].Dims
}

// record merges one rank's contribution to a transition, keyed by the
// epoch it produced (ranks reach the same transition at different
// times, and only view rank 0 fills the metadata).
func (j *ElasticJob) record(epoch int64, bytes int64, fill func(*TransitionStats)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	t := j.byEpoch[epoch]
	if t == nil {
		t = &TransitionStats{Epoch: epoch}
		j.byEpoch[epoch] = t
		j.transitions = append(j.transitions, t)
	}
	t.BytesSent += bytes
	if fill != nil {
		fill(t)
	}
}

// RunWorker is the per-world-rank body. Initial members stream from
// step 0; scripted spares wait for adoption and join mid-stream;
// unscripted spares are never admitted and exit immediately.
func (j *ElasticJob) RunWorker(w *cluster.Worker) error {
	me := w.Rank()
	v := cluster.InitialView(j.opts.Members)
	if !v.Contains(me) {
		s := j.joinStep(me)
		if s < 0 {
			return nil
		}
		cluster.RequestJoin(w)
		av, cookie, err := cluster.AwaitAdopt(w)
		if err != nil {
			return fmt.Errorf("core: spare %d awaiting adoption: %w", me, err)
		}
		if int(cookie) != s {
			return fmt.Errorf("core: spare %d adopted for step %d, scripted %d", me, cookie, s)
		}
		vw, err := w.ViewWorker(av)
		if err != nil {
			return err
		}
		vw.Obs().Counter("elastic.epochs").Add(1)
		rs := j.newRankStream(w)
		prev, err := j.recvBoot(vw, s, rs)
		if err != nil {
			return err
		}
		return j.stream(w, av, vw, prev, s, true, rs)
	}
	vw, err := w.ViewWorker(v)
	if err != nil {
		return err
	}
	return j.stream(w, v, vw, j.prev, 0, false, j.newRankStream(w))
}

// stream runs steps start..end on the member's current view. adopted
// marks a joiner entering after its admission fence already ran.
func (j *ElasticJob) stream(w *cluster.Worker, v cluster.View, vw *cluster.Worker, prev *dtd.State, start int, adopted bool, rs *rankStream) error {
	for s := start; s < len(j.snapshots); s++ {
		if !adopted || s > start {
			var cont bool
			var err error
			v, vw, cont, err = j.fence(w, v, vw, s, prev, rs)
			if err != nil {
				return err
			}
			if !cont {
				return nil // drained
			}
		}
		if vw.Rank() == 0 && j.opts.Checkpoint != nil {
			if err := j.opts.Checkpoint(s, prev); err != nil {
				return err
			}
		}
		var err error
		prev, v, vw, err = j.runStep(w, v, vw, prev, s, rs)
		if err != nil {
			return err
		}
	}
	if vw.Rank() == 0 {
		j.mu.Lock()
		j.final = prev
		j.mu.Unlock()
	}
	return nil
}

// fence is the between-steps membership barrier: scripted joins and
// drains for step s are agreed on, joiners adopted and booted with the
// synced state, drainers released. A pending detector fire with no
// membership change still runs the view agreement — the empty change
// bumps the epoch, marking the re-partition boundary — at zero factor
// traffic, since every member already holds the synced state. The
// returned bool is false when this rank drained. With an empty change
// and no pending rebalance the fence costs nothing.
func (j *ElasticJob) fence(w *cluster.Worker, v cluster.View, vw *cluster.Worker, s int, prev *dtd.State, rs *rankStream) (cluster.View, *cluster.Worker, bool, error) {
	// Drain pending membership RPCs; admission itself follows the shared
	// script so every member fences identically without consensus on the
	// request arrival order.
	cluster.PollMembershipRequests(w)
	vc := cluster.ViewChange{}
	if r, ok := j.opts.JoinAtStep[s]; ok {
		vc.Join = []int{r}
	}
	if r, ok := j.opts.DrainAtStep[s]; ok {
		vc.Leave = []int{r}
		if r == w.Rank() {
			cluster.RequestDrain(w)
		}
	}
	// The staged fire is consumed either way: a membership change
	// re-partitions (with the new weights) on its own epoch bump.
	rebalance := rs.pending && vc.Empty()
	rs.pending = false
	if vc.Empty() && !rebalance {
		return v, vw, true, nil
	}
	next, err := cluster.AgreeView(w, v, vc)
	if err != nil {
		return v, vw, false, fmt.Errorf("core: fence at step %d: %w", s, err)
	}
	if w.Rank() == cluster.Coordinator(v, next) {
		for _, r := range vc.Join {
			if err := cluster.SendAdopt(w, r, next, int64(s)); err != nil {
				return v, vw, false, err
			}
		}
	}
	for _, r := range vc.Leave {
		if r == w.Rank() {
			return v, vw, false, nil
		}
	}
	vw2, err := w.ViewWorker(next)
	if err != nil {
		return v, vw, false, err
	}
	vw2.Obs().Counter("elastic.epochs").Add(1)
	var bootBytes int64
	if vw2.Rank() == 0 && len(vc.Join) > 0 {
		base := vw2.MetricsSnapshot()
		for _, r := range vc.Join {
			if err := j.sendBoot(vw2, next.RankOf(r), prev, rs); err != nil {
				return v, vw, false, err
			}
		}
		bootBytes = vw2.MetricsSnapshot().BytesSent - base.BytesSent
	}
	if vw2.Rank() == 0 {
		j.record(next.Epoch, bootBytes, func(t *TransitionStats) {
			t.Step = s
			t.Join = append([]int(nil), vc.Join...)
			t.Leave = append([]int(nil), vc.Leave...)
			if rebalance {
				t.Rebalance = true
				t.CV = rs.cv
			}
		})
	}
	if rebalance {
		vw2.Obs().Counter("elastic.rebalances").Add(1)
	}
	return next, vw2, true, nil
}

// sendBoot ships the synced pre-step state to a freshly adopted joiner
// — the only rank missing it — as one message per mode, plus the
// current detector weight table so the joiner's plans agree with every
// incumbent's (empty when no rebalance ever fired).
func (j *ElasticJob) sendBoot(vw *cluster.Worker, to int, prev *dtd.State, rs *rankStream) error {
	for m, f := range prev.Factors {
		if err := vw.Send(to, vw.StreamTagIndexed("boot", m), cluster.EncodeFloat64s(f.Data)); err != nil {
			return err
		}
	}
	return vw.Send(to, vw.StreamTag("boot/w"), cluster.EncodeFloat64s(rs.weightByWorld))
}

// recvBoot receives the joiner's warm-start state and the detector
// weight table from view rank 0.
func (j *ElasticJob) recvBoot(vw *cluster.Worker, s int, rs *rankStream) (*dtd.State, error) {
	dims := j.dimsBefore(s)
	factors := make([]*mat.Dense, len(dims))
	for m, d := range dims {
		payload, err := vw.Recv(0, vw.StreamTagIndexed("boot", m))
		if err != nil {
			return nil, err
		}
		vals, err := cluster.DecodeFloat64s(payload)
		if err != nil {
			return nil, err
		}
		if len(vals) != d*j.opts.Rank {
			return nil, fmt.Errorf("core: boot mode %d: %d values for %dx%d", m, len(vals), d, j.opts.Rank)
		}
		factors[m] = mat.New(d, j.opts.Rank)
		copy(factors[m].Data, vals)
	}
	payload, err := vw.Recv(0, vw.StreamTag("boot/w"))
	if err != nil {
		return nil, err
	}
	ww, err := cluster.DecodeFloat64s(payload)
	if err != nil {
		return nil, err
	}
	if len(ww) > 0 {
		if len(ww) != j.opts.World {
			return nil, fmt.Errorf("core: boot weights for %d world ranks, want %d", len(ww), j.opts.World)
		}
		rs.weightByWorld = ww
	}
	return &dtd.State{Dims: append([]int(nil), dims...), Factors: factors}, nil
}

// runStep advances one snapshot step, recovering from mid-step rank
// deaths: on ErrPeerDown the survivors re-partition, migrate, and
// restart the sweeps warm on the shrunken view. Returns the synced
// post-step state and the (possibly changed) view.
func (j *ElasticJob) runStep(w *cluster.Worker, v cluster.View, vw *cluster.Worker, prev *dtd.State, s int, rs *rankStream) (*dtd.State, cluster.View, *cluster.Worker, error) {
	job, err := NewStepJob(prev, j.snapshots[s], j.stepOpts(v, rs))
	if err != nil {
		return nil, v, vw, err
	}
	warm := make([]*mat.Dense, len(job.init))
	for m := range warm {
		warm[m] = job.init[m].Clone()
	}
	st := newWorkerStateFactors(job, vw, warm)
	defer func() { st.close() }()

	var lastLoss float64
	for {
		err := st.establishGrams()
		if err == nil {
			prevLoss := math.Inf(1)
			for sweep := 0; sweep < job.opts.MaxIters; sweep++ {
				if r, ok := j.opts.KillAtStep[s]; ok && r == w.Rank() && sweep == j.opts.KillSweep {
					return nil, v, vw, fmt.Errorf("%w: rank %d at step %d sweep %d", ErrScriptedCrash, r, s, sweep)
				}
				var loss float64
				loss, err = st.sweepOnce(sweep)
				if err != nil {
					break
				}
				lastLoss = loss
				stop := relChange(prevLoss, loss) < job.opts.Tol
				prevLoss = loss
				if stop {
					break
				}
			}
		}
		if err == nil {
			j.chaosSlow(w, vw, job)
			var synced *dtd.State
			synced, err = j.syncState(vw, job, st.full)
			if err == nil && rs.plane != nil {
				// Observability fence: lockstep with the state sync, so
				// every member contributes and receives the decision.
				err = j.obsFence(vw, v, rs, job, s)
			}
			if err == nil {
				if vw.Rank() == 0 && s == len(j.snapshots)-1 {
					j.mu.Lock()
					j.finalLoss = lastLoss
					j.mu.Unlock()
				}
				return synced, v, vw, nil
			}
		}
		v, vw, job, st, err = j.recover(w, v, vw, job, st, err, s)
		if err != nil {
			return nil, v, vw, err
		}
	}
}

// chaosSlow burns this rank's scripted compute handicap — extra
// nanoseconds proportional to the planned load it was assigned —
// inside a compute-phase span, so the plane's detector observes it as
// genuinely slower hardware. A no-op unless the rank is scripted in
// SlowRanks. The "/mttkrp" suffix is what routes the padding into the
// detector's compute-time statistic (obs.PhaseOf); the "chaos/" prefix
// keeps it distinguishable from real kernels in timelines.
func (j *ElasticJob) chaosSlow(w, vw *cluster.Worker, job *StepJob) {
	h := j.opts.SlowRanks[w.Rank()]
	if h <= 0 {
		return
	}
	sp := vw.Obs().Span("chaos/mttkrp")
	defer sp.End()
	time.Sleep(time.Duration(h * job.plan.RankLoads()[vw.Rank()]))
}

// recover handles one mid-step rank death: revoke the dead rank's
// epoch (unblocking survivors stuck on live-but-blocked peers), agree
// the shrunken view, rebalance the plan with minimal movement, migrate
// the moved factor rows, absorb the dead rank's rows from local
// replicas, refresh the row subscriptions, and rebind the worker state
// to the new epoch with warm factors.
func (j *ElasticJob) recover(w *cluster.Worker, v cluster.View, vw *cluster.Worker, job *StepJob, st *workerState, cause error, s int) (cluster.View, *cluster.Worker, *StepJob, *workerState, error) {
	pd, ok := cluster.AsPeerDown(cause)
	if !ok {
		return v, vw, job, st, cause
	}
	dead := pd.Rank
	sp := vw.Obs().Span("elastic/recover")
	defer sp.End()
	vw.Revoke(dead)
	vw.ClearFault()
	vc := cluster.ViewChange{Dead: []int{dead}}
	if !v.Contains(dead) {
		// A non-member went dark: a drained rank or a finished spare,
		// whose process exit a TCP failure detector reports exactly like
		// a crash. Membership is unchanged, but the poison aborted this
		// rank's sweep at an arbitrary point (and the revocation above
		// aborts everyone else), so the members still run a transition:
		// the empty change bumps the epoch, fencing off the aborted
		// sweep's in-flight messages before the warm restart.
		vc = cluster.ViewChange{}
	}
	next, err := cluster.AgreeView(w, v, vc)
	if err != nil {
		return v, vw, job, st, fmt.Errorf("core: recovering from down rank %d: %w", dead, err)
	}
	newPlan, err := dplan.RebuildRebalanced(job.plan, v, next)
	if err != nil {
		return v, vw, job, st, err
	}
	vw2, err := w.ViewWorker(next)
	if err != nil {
		return v, vw, job, st, err
	}
	d := dplan.ComputeDelta(job.plan, v, newPlan, next)
	full := st.full
	st.close()

	base := vw2.MetricsSnapshot()
	if err := dplan.Migrate(vw2, d, full); err != nil {
		return v, vw, job, st, err
	}
	// Refresh every subscription under the new plan: the aborted sweep
	// left replicas unevenly fresh across ranks, and the old epoch's
	// in-flight rows are fenced off, so each subscriber re-pulls from
	// the (warm) owners before the Gram state is re-established.
	for m := range full {
		if err := dplan.ExchangeRows(vw2, newPlan, m, full[m], false); err != nil {
			return v, vw, job, st, err
		}
	}
	sent := vw2.MetricsSnapshot().BytesSent - base.BytesSent

	absorbed := 0
	for m := range d.Absorbed {
		absorbed += len(d.Absorbed[m][vw2.Rank()])
	}
	o := vw2.Obs()
	o.Counter("elastic.epochs").Add(1)
	o.Counter("elastic.recoveries").Add(1)
	o.Counter("elastic.absorbed.rows").Add(int64(absorbed))
	fill := func(t *TransitionStats) {
		t.Step = s
		t.Dead = append([]int(nil), vc.Dead...)
		t.MovedRows = d.MovedRows()
		t.AbsorbedRows = d.AbsorbedRows()
	}
	if vw2.Rank() != 0 {
		fill = nil
	}
	j.record(next.Epoch, sent, fill)

	job2 := job.withPlan(newPlan, next.Size())
	st2 := newWorkerStateFactors(job2, vw2, full)
	return next, vw2, job2, st2, nil
}

// withPlan rebinds a step job to a rebalanced plan for a different
// member count; the tensors, previous factors, and loss constants are
// shared unchanged.
func (j *StepJob) withPlan(plan *dplan.Plan, workers int) *StepJob {
	opts := j.opts
	opts.Workers = workers
	opts.Parts = workers
	// The recovery re-plan minimises movement from the old assignment
	// (partition.Rebalance), ignoring cost weights — and the old weights
	// are sized for the old view anyway. The next step's fresh plan
	// re-applies the detector's world-keyed weights via stepOpts.
	opts.RankWeights = nil
	return &StepJob{
		opts:       opts,
		newDims:    j.newDims,
		plan:       plan,
		oldDims:    j.oldDims,
		tilde:      j.tilde,
		init:       j.init,
		cTilde:     j.cTilde,
		compNormSq: j.compNormSq,
		algo:       make([]cluster.Metrics, workers),
		caches:     newCaches(workers),
	}
}

// syncState assembles the step's result on view rank 0 (each owner
// contributes its owned rows) and broadcasts it, so every member —
// not just rank 0 — enters the next fence holding the full state. That
// replication is what makes fences cheap: drains hand off nothing and
// failures absorb from local replicas.
func (j *ElasticJob) syncState(vw *cluster.Worker, job *StepJob, full []*mat.Dense) (*dtd.State, error) {
	r := job.opts.Rank
	factors := make([]*mat.Dense, len(full))
	for m := range full {
		owned := job.plan.OwnedSlices[m][vw.Rank()]
		buf := make([]float64, 0, len(owned)*r)
		for _, sl := range owned {
			buf = append(buf, full[m].Row(int(sl))...)
		}
		parts, err := vw.GatherBytes(0, cluster.EncodeFloat64s(buf))
		if err != nil {
			return nil, err
		}
		var enc []byte
		if vw.Rank() == 0 {
			out := mat.New(job.newDims[m], r)
			for rank, payload := range parts {
				vals, err := cluster.DecodeFloat64s(payload)
				if err != nil {
					return nil, err
				}
				rows := job.plan.OwnedSlices[m][rank]
				if len(vals) != len(rows)*r {
					return nil, fmt.Errorf("core: state sync mode %d rank %d: %d values for %d rows", m, rank, len(vals), len(rows))
				}
				for i, sl := range rows {
					copy(out.Row(int(sl)), vals[i*r:(i+1)*r])
				}
			}
			enc = cluster.EncodeFloat64s(out.Data)
		}
		got, err := vw.BroadcastBytes(0, enc)
		if err != nil {
			return nil, err
		}
		vals, err := cluster.DecodeFloat64s(got)
		if err != nil {
			return nil, err
		}
		if len(vals) != job.newDims[m]*r {
			return nil, fmt.Errorf("core: state sync mode %d: %d values for %dx%d", m, len(vals), job.newDims[m], r)
		}
		factors[m] = mat.New(job.newDims[m], r)
		copy(factors[m].Data, vals)
	}
	return &dtd.State{Dims: append([]int(nil), job.newDims...), Factors: factors}, nil
}
