package core

// Chaos tests for the elastic multi-step driver: membership changes —
// scripted crashes mid-step, joins and drains at fences — must leave
// the decomposition's convergence intact (fit within 1e-6 relative of
// an uninterrupted run), move only the factor rows that changed owner,
// and cost nothing when membership is static (bitwise-identical to the
// sequential Step driver).

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"dismastd/internal/cluster"
	"dismastd/internal/dplan"
	"dismastd/internal/dtd"
	"dismastd/internal/mat"
	"dismastd/internal/partition"
	"dismastd/internal/tensor"
)

// elasticSeq builds a growing snapshot stream and its initial state.
func elasticSeq(t *testing.T, rank int) (*dtd.State, []*tensor.Tensor) {
	t.Helper()
	full := sparseRandom([]int{26, 24, 22}, 3000, 71)
	seq, err := tensor.NewSequence(full, [][]int{{18, 17, 16}, {21, 20, 19}, {24, 22, 20}, {26, 24, 22}})
	if err != nil {
		t.Fatal(err)
	}
	prev := initState(t, seq.Snapshot(0), rank, 73)
	snaps := make([]*tensor.Tensor, 0, seq.Len()-1)
	for i := 1; i < seq.Len(); i++ {
		snaps = append(snaps, seq.Snapshot(i))
	}
	return prev, snaps
}

func elasticBase(world, members int) ElasticOptions {
	return ElasticOptions{
		Options: Options{Rank: 3, MaxIters: 30, Tol: 1e-10, Mu: 0.8, Seed: 21, Method: partition.MTPMethod},
		World:   world,
		Members: members,
	}
}

// referenceRun chains the static Step driver over the same snapshots
// and returns the final state and final step loss.
func referenceRun(t *testing.T, prev *dtd.State, snaps []*tensor.Tensor, workers int, o Options) (*dtd.State, float64) {
	t.Helper()
	var loss float64
	for i, snap := range snaps {
		o.Workers = workers
		o.Parts = workers
		st, stats, err := Step(prev, snap, o)
		if err != nil {
			t.Fatalf("reference step %d: %v", i, err)
		}
		prev, loss = st, stats.Loss
	}
	return prev, loss
}

func runElastic(t *testing.T, j *ElasticJob, world int) (*cluster.RunStats, error) {
	t.Helper()
	c := cluster.NewLocal(world)
	c.SetElastic(true)
	c.SetRecvTimeout(60 * time.Second)
	return c.Run(j.RunWorker)
}

// TestElasticStaticMatchesStepBitwise: with no membership events the
// elastic driver must reproduce the sequential Step driver bitwise —
// elasticity is pay-for-what-you-use.
func TestElasticStaticMatchesStepBitwise(t *testing.T) {
	prev, snaps := elasticSeq(t, 3)
	o := elasticBase(3, 3)
	ref, refLoss := referenceRun(t, prev, snaps, 3, o.Options)

	job, err := NewElasticJob(prev, snaps, o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runElastic(t, job, 3); err != nil {
		t.Fatal(err)
	}
	got, gotLoss, transitions, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(transitions) != 0 {
		t.Fatalf("static run recorded %d transitions", len(transitions))
	}
	if gotLoss != refLoss {
		t.Fatalf("static elastic loss %v, reference %v", gotLoss, refLoss)
	}
	for m := range got.Factors {
		if d := mat.MaxAbsDiff(got.Factors[m], ref.Factors[m]); d != 0 {
			t.Fatalf("mode %d diverges from the static driver by %g", m, d)
		}
	}
}

// TestElasticKillAndJoinMidStream is the headline chaos test: world of
// 4 ranks streams 3 steps with 3 members; rank 1 crashes mid-sweep in
// step 1, the survivors finish the step degraded, and spare rank 3 is
// admitted at step 2's fence as a warm-started replacement. The final
// fit must track an uninterrupted run within 1e-6 relative, and the
// recovery must ship zero factor rows (pure local absorption) — only
// the subscription refresh and the joiner's boot state cross the wire,
// byte-for-byte accounted.
func TestElasticKillAndJoinMidStream(t *testing.T) {
	const r = 3
	prev, snaps := elasticSeq(t, r)
	o := elasticBase(4, 3)
	_, refLoss := referenceRun(t, prev, snaps, 3, o.Options)

	o.KillAtStep = map[int]int{1: 1}
	o.JoinAtStep = map[int]int{2: 3}
	job, err := NewElasticJob(prev, snaps, o)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := runElastic(t, job, 4)
	if !errors.Is(err, ErrScriptedCrash) {
		t.Fatalf("run error = %v, want the scripted crash", err)
	}
	final, gotLoss, transitions, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}
	if final.Dims[0] != snaps[2].Dims[0] {
		t.Fatalf("final state dims %v", final.Dims)
	}
	if rel := math.Abs(gotLoss-refLoss) / refLoss; rel > 1e-6 {
		t.Fatalf("elastic fit %v vs uninterrupted %v (relative %g)", gotLoss, refLoss, rel)
	}

	if len(transitions) != 2 {
		t.Fatalf("recorded %d transitions, want 2 (recovery + join): %+v", len(transitions), transitions)
	}
	rec, join := transitions[0], transitions[1]

	// Recovery transition: epoch 1, rank 1 dead during step 1, and the
	// shrink moved nothing — every dead-owned row was absorbed from the
	// survivors' local replicas at zero wire cost.
	oldView := cluster.InitialView(3)
	newView := cluster.ViewChange{Dead: []int{1}}.Apply(oldView)
	comp := snaps[1].Complement(snaps[0].Dims)
	oldPlan := dplan.Build(comp, 3, 3, o.Method)
	newPlan, err := dplan.RebuildRebalanced(oldPlan, oldView, newView)
	if err != nil {
		t.Fatal(err)
	}
	delta := dplan.ComputeDelta(oldPlan, oldView, newPlan, newView)
	wantAbsorbed := 0
	for m := range oldPlan.Dims {
		wantAbsorbed += len(oldPlan.OwnedSlices[m][1])
	}
	if rec.Epoch != 1 || rec.Step != 1 || len(rec.Dead) != 1 || rec.Dead[0] != 1 {
		t.Fatalf("recovery transition = %+v", rec)
	}
	if rec.MovedRows != 0 || delta.MovedRows() != 0 {
		t.Fatalf("recovery moved %d rows (delta says %d), want 0", rec.MovedRows, delta.MovedRows())
	}
	if rec.AbsorbedRows != wantAbsorbed {
		t.Fatalf("absorbed %d rows, dead rank owned %d", rec.AbsorbedRows, wantAbsorbed)
	}
	// Exact byte accounting: zero migration bytes, so the transition's
	// traffic is exactly the post-recovery subscription refresh under
	// the epoch-1 plan.
	wantBytes := int64(0)
	for m := range newPlan.Dims {
		tag := int64(len("v1|rows/0")) // epoch-fenced stream tag, single-digit modes
		for owner := 0; owner < newPlan.Workers; owner++ {
			for sub := 0; sub < newPlan.Workers; sub++ {
				rows := newPlan.SendLists[m][owner][sub]
				if owner == sub || len(rows) == 0 {
					continue
				}
				wantBytes += int64(8*r*len(rows)) + tag + 8
			}
		}
	}
	if rec.BytesSent != wantBytes {
		t.Fatalf("recovery sent %d bytes, want %d (refresh only)", rec.BytesSent, wantBytes)
	}

	// Join transition: epoch 2 admits spare 3 at step 2's fence; the
	// only traffic is the joiner's warm-start state, one message per
	// mode from view rank 0.
	if join.Epoch != 2 || join.Step != 2 || len(join.Join) != 1 || join.Join[0] != 3 {
		t.Fatalf("join transition = %+v", join)
	}
	wantBoot := int64(0)
	for _, d := range snaps[1].Dims {
		wantBoot += int64(8*d*r) + int64(len("v2|boot/0")) + 8
	}
	// Plus the detector weight table — empty here (no rebalance has
	// fired), so the boot/w message is tag + accounting overhead only.
	wantBoot += int64(len("v2|boot/w")) + 8
	if join.BytesSent != wantBoot {
		t.Fatalf("join sent %d bytes, want %d (boot state only)", join.BytesSent, wantBoot)
	}

	// Per-rank instrumentation: both survivors recovered exactly once
	// and migrated nothing; the joiner adopted one epoch.
	for _, world := range []int{0, 2} {
		c := stats.Ranks[world].Obs.Metrics.Counters
		if c["elastic.recoveries"] != 1 {
			t.Fatalf("rank %d recoveries = %d, want 1", world, c["elastic.recoveries"])
		}
		if c["elastic.migrate.rows"] != 0 {
			t.Fatalf("rank %d migrated %d rows, want 0", world, c["elastic.migrate.rows"])
		}
	}
	if c := stats.Ranks[3].Obs.Metrics.Counters; c["elastic.epochs"] != 1 {
		t.Fatalf("joiner epochs = %d, want 1", c["elastic.epochs"])
	}
}

// TestElasticDrainMidStream: a member retires at a step fence; the
// remaining pair finishes the stream and still converges to the
// uninterrupted fit. The fence itself is free of factor traffic, and
// the checkpoint hook observes every fence with the synced state.
func TestElasticDrainMidStream(t *testing.T) {
	prev, snaps := elasticSeq(t, 3)
	o := elasticBase(3, 3)
	_, refLoss := referenceRun(t, prev, snaps, 3, o.Options)

	var mu sync.Mutex
	var ckSteps []int
	var ckDims []int
	o.DrainAtStep = map[int]int{1: 2}
	o.Checkpoint = func(step int, st *dtd.State) error {
		mu.Lock()
		defer mu.Unlock()
		ckSteps = append(ckSteps, step)
		ckDims = append(ckDims, st.Dims[0])
		return nil
	}
	job, err := NewElasticJob(prev, snaps, o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runElastic(t, job, 3); err != nil {
		t.Fatal(err)
	}
	_, gotLoss, transitions, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(gotLoss-refLoss) / refLoss; rel > 1e-6 {
		t.Fatalf("drained fit %v vs uninterrupted %v (relative %g)", gotLoss, refLoss, rel)
	}
	if len(transitions) != 1 {
		t.Fatalf("recorded %d transitions, want 1: %+v", len(transitions), transitions)
	}
	d := transitions[0]
	if d.Epoch != 1 || d.Step != 1 || len(d.Leave) != 1 || d.Leave[0] != 2 {
		t.Fatalf("drain transition = %+v", d)
	}
	if d.BytesSent != 0 || d.MovedRows != 0 {
		t.Fatalf("drain fence cost %d bytes / %d rows, want none", d.BytesSent, d.MovedRows)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ckSteps) != len(snaps) {
		t.Fatalf("checkpoint hook fired at steps %v, want one per step", ckSteps)
	}
	for i, s := range ckSteps {
		if s != i {
			t.Fatalf("checkpoint steps %v out of order", ckSteps)
		}
		wantDim := prev.Dims[0]
		if i > 0 {
			wantDim = snaps[i-1].Dims[0]
		}
		if ckDims[i] != wantDim {
			t.Fatalf("checkpoint %d saw dim %d, want %d", i, ckDims[i], wantDim)
		}
	}
}
