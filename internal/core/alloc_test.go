package core

import (
	"fmt"
	"testing"

	"dismastd/internal/cluster"
	"dismastd/internal/dtd"
	"dismastd/internal/layout"
	"dismastd/internal/partition"
)

// TestWorkerComputePathAllocFree pins the tentpole property of the
// workspace refactor on the distributed side: one full iteration of the
// per-rank compute path — MTTKRP, Eq. (5) denominators, owned-row
// updates, Gram partials and their application, and both halves of the
// Eq. (4) loss — performs zero heap allocations at steady state.
//
// With Workers=1 the local Gram partial batch IS the global sum, so
// feeding it back through applyGramSums reproduces the algorithm's
// state transitions exactly, isolating the compute path; the transport
// collectives are covered by TestDistributedSweepAllocFree below.
func TestWorkerComputePathAllocFree(t *testing.T) {
	for _, threads := range []int{1, 4} {
		t.Run(fmt.Sprintf("threads=%d", threads), func(t *testing.T) {
			testWorkerComputePathAllocFree(t, threads)
		})
	}
}

func testWorkerComputePathAllocFree(t *testing.T, threads int) {
	full := sparseRandom([]int{12, 10, 8}, 600, 5)
	prevSnap := full.Prefix([]int{9, 8, 6})
	opts := Options{Rank: 3, MaxIters: 5, Mu: 0.7, Seed: 11, Workers: 1, Threads: threads, Method: partition.GTPMethod}
	prev, _, err := dtd.Init(prevSnap, dtd.Options{Rank: opts.Rank, MaxIters: opts.MaxIters, Mu: opts.Mu, Seed: opts.Seed})
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewStepJob(prev, full, opts)
	if err != nil {
		t.Fatal(err)
	}

	cl := cluster.NewLocal(1)
	if _, err := cl.Run(func(w *cluster.Worker) error {
		st := newWorkerState(job, w)
		defer st.close()
		n := len(st.full)
		// Establish the replicated Gram state as RunWorker does; with a
		// single worker the partial batch equals the reduced sum.
		for m := 0; m < n; m++ {
			st.gramPartials(m)
			st.applyGramSums(m, st.batch)
		}
		// The pass runs fully instrumented — pre-resolved counters and
		// spans included — pinning the observability layer's hot-path
		// zero-allocation contract alongside the kernels'.
		pass := func() {
			for m := 0; m < n; m++ {
				sp := st.obs.Span(st.names[m].mttkrp)
				st.mttkrpMode(m)
				sp.End()
				sp = st.obs.Span(st.names[m].solve)
				st.denominators(m)
				st.updateOwnedRows(m)
				sp.End()
				sp = st.obs.Span(st.names[m].allreduce)
				st.gramPartials(m)
				st.applyGramSums(m, st.batch)
				sp.End()
			}
			sp := st.obs.Span("loss")
			inner := st.lossLocalInner()
			done := st.lossFinish(inner)
			sp.End()
			if done < 0 {
				t.Error("negative loss")
			}
		}
		pass() // warm-up: workspace slabs grow to their running maximum
		if allocs := testing.AllocsPerRun(10, pass); allocs != 0 {
			t.Errorf("steady-state core compute path allocates %v times per iteration, want 0", allocs)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDistributedSweepAllocFree extends the zero-allocation guarantee
// across the transport: a full multi-rank steady-state sweep — MTTKRP,
// solves, the batched Gram all-reduce, the subscription row exchange,
// and the scalar loss reduction — performs zero heap allocations on the
// Local transport, on both the tree and ring collective paths. Every
// rank measures concurrently, and AllocsPerRun counts process-global
// mallocs, so a zero here means no rank allocated anywhere in the
// overlapping measurement windows.
func TestDistributedSweepAllocFree(t *testing.T) {
	for _, tc := range []struct {
		name       string
		threads    int
		ringThresh int
		layout     layout.Kind
	}{
		{"tree/threads=1", 1, 0, layout.COO}, // default threshold keeps the 3R² batch on the tree
		{"tree/threads=4", 4, 0, layout.COO},
		{"ring/threads=1", 1, 8, layout.COO}, // force the Gram batch onto the ring path
		{"compiled/threads=1", 1, 0, layout.Compiled},
		{"compiled/threads=4", 4, 0, layout.Compiled},
	} {
		t.Run(tc.name, func(t *testing.T) {
			testDistributedSweepAllocFree(t, tc.threads, tc.ringThresh, tc.layout)
		})
	}
}

func testDistributedSweepAllocFree(t *testing.T, threads, ringThresh int, kind layout.Kind) {
	const workers = 3 // odd: exercises the uneven tree and ring segment split
	full := sparseRandom([]int{12, 10, 8}, 600, 5)
	prevSnap := full.Prefix([]int{9, 8, 6})
	opts := Options{Rank: 3, MaxIters: 5, Mu: 0.7, Seed: 11, Workers: workers, Threads: threads, Layout: kind, Method: partition.GTPMethod}
	prev, _, err := dtd.Init(prevSnap, dtd.Options{Rank: opts.Rank, MaxIters: opts.MaxIters, Mu: opts.Mu, Seed: opts.Seed})
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewStepJob(prev, full, opts)
	if err != nil {
		t.Fatal(err)
	}

	cl := cluster.NewLocal(workers)
	if ringThresh > 0 {
		cl.SetRingThreshold(ringThresh)
	}
	perRank := make([]float64, workers)
	if _, err := cl.Run(func(w *cluster.Worker) error {
		st := newWorkerState(job, w)
		defer st.close()
		n := len(st.full)
		for m := 0; m < n; m++ {
			if err := st.reduceGrams(m); err != nil {
				return err
			}
		}
		// One rank's steady-state sweep, fully instrumented, collectives
		// and exchange included. Every rank runs pass the same number of
		// times (one warm-up here, one inside AllocsPerRun, then the
		// measured runs), so the lockstep collective contract holds
		// across the concurrent measurements.
		var passErr error
		pass := func() {
			if passErr != nil {
				return // a failed rank stops participating; peers unblock via poisoning
			}
			for m := 0; m < n; m++ {
				sp := st.obs.Span(st.names[m].mttkrp)
				st.mttkrpMode(m)
				sp.End()
				sp = st.obs.Span(st.names[m].solve)
				st.denominators(m)
				st.updateOwnedRows(m)
				sp.End()
				sp = st.obs.Span(st.names[m].allreduce)
				err := st.reduceGrams(m)
				sp.End()
				if err == nil {
					sp = st.obs.Span(st.names[m].exchange)
					err = st.exch.Exchange(m, st.full[m], false)
					sp.End()
				}
				if err != nil {
					passErr = err
					return
				}
			}
			sp := st.obs.Span("loss")
			_, err := st.loss()
			sp.End()
			if err != nil {
				passErr = err
			}
		}
		pass() // warm-up: workspaces, comm buffers, stream tags, mailbox queues
		allocs := testing.AllocsPerRun(10, pass)
		if passErr != nil {
			return passErr
		}
		perRank[w.Rank()] = allocs
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for rank, a := range perRank {
		if a != 0 {
			t.Errorf("rank %d: steady-state distributed sweep allocates %v times per iteration, want 0", rank, a)
		}
	}
}

// BenchmarkStepLocal measures one full distributed streaming step on
// the in-process cluster — compute plus Local-transport collectives —
// so -benchmem shows how much of the remaining allocation is transport.
func BenchmarkStepLocal(b *testing.B) {
	full := sparseRandom([]int{40, 30, 20}, 5000, 5)
	prevSnap := full.Prefix([]int{32, 24, 16})
	opts := Options{Rank: 8, MaxIters: 3, Mu: 0.7, Seed: 11, Workers: 2, Method: partition.GTPMethod}
	prev, _, err := dtd.Init(prevSnap, dtd.Options{Rank: opts.Rank, MaxIters: 5, Mu: opts.Mu, Seed: opts.Seed})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Step(prev, full, opts); err != nil {
			b.Fatal(err)
		}
	}
}
