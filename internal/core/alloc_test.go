package core

import (
	"fmt"
	"testing"

	"dismastd/internal/cluster"
	"dismastd/internal/dtd"
	"dismastd/internal/partition"
)

// TestWorkerComputePathAllocFree pins the tentpole property of the
// workspace refactor on the distributed side: one full iteration of the
// per-rank compute path — MTTKRP, Eq. (5) denominators, owned-row
// updates, Gram partials and their application, and both halves of the
// Eq. (4) loss — performs zero heap allocations at steady state.
//
// The transport collectives (AllReduceSum's reduced vector, the gob row
// exchange) are deliberately outside the measured region: they allocate
// by design in the Local transport and are exercised by the cluster
// package's own tests. With Workers=1 the local Gram partial batch IS
// the global sum, so feeding it back through applyGramSums reproduces
// the algorithm's state transitions exactly.
func TestWorkerComputePathAllocFree(t *testing.T) {
	for _, threads := range []int{1, 4} {
		t.Run(fmt.Sprintf("threads=%d", threads), func(t *testing.T) {
			testWorkerComputePathAllocFree(t, threads)
		})
	}
}

func testWorkerComputePathAllocFree(t *testing.T, threads int) {
	full := sparseRandom([]int{12, 10, 8}, 600, 5)
	prevSnap := full.Prefix([]int{9, 8, 6})
	opts := Options{Rank: 3, MaxIters: 5, Mu: 0.7, Seed: 11, Workers: 1, Threads: threads, Method: partition.GTPMethod}
	prev, _, err := dtd.Init(prevSnap, dtd.Options{Rank: opts.Rank, MaxIters: opts.MaxIters, Mu: opts.Mu, Seed: opts.Seed})
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewStepJob(prev, full, opts)
	if err != nil {
		t.Fatal(err)
	}

	cl := cluster.NewLocal(1)
	if _, err := cl.Run(func(w *cluster.Worker) error {
		st := newWorkerState(job, w)
		defer st.close()
		n := len(st.full)
		// Establish the replicated Gram state as RunWorker does; with a
		// single worker the partial batch equals the reduced sum.
		for m := 0; m < n; m++ {
			st.gramPartials(m)
			st.applyGramSums(m, st.batch)
		}
		// The pass runs fully instrumented — pre-resolved counters and
		// spans included — pinning the observability layer's hot-path
		// zero-allocation contract alongside the kernels'.
		pass := func() {
			for m := 0; m < n; m++ {
				sp := st.obs.Span(st.names[m].mttkrp)
				st.mttkrpMode(m)
				sp.End()
				sp = st.obs.Span(st.names[m].solve)
				st.denominators(m)
				st.updateOwnedRows(m)
				sp.End()
				sp = st.obs.Span(st.names[m].allreduce)
				st.gramPartials(m)
				st.applyGramSums(m, st.batch)
				sp.End()
			}
			sp := st.obs.Span("loss")
			inner := st.lossLocalInner()
			done := st.lossFinish(inner)
			sp.End()
			if done < 0 {
				t.Error("negative loss")
			}
		}
		pass() // warm-up: workspace slabs grow to their running maximum
		if allocs := testing.AllocsPerRun(10, pass); allocs != 0 {
			t.Errorf("steady-state core compute path allocates %v times per iteration, want 0", allocs)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkStepLocal measures one full distributed streaming step on
// the in-process cluster — compute plus Local-transport collectives —
// so -benchmem shows how much of the remaining allocation is transport.
func BenchmarkStepLocal(b *testing.B) {
	full := sparseRandom([]int{40, 30, 20}, 5000, 5)
	prevSnap := full.Prefix([]int{32, 24, 16})
	opts := Options{Rank: 8, MaxIters: 3, Mu: 0.7, Seed: 11, Workers: 2, Method: partition.GTPMethod}
	prev, _, err := dtd.Init(prevSnap, dtd.Options{Rank: opts.Rank, MaxIters: 5, Mu: opts.Mu, Seed: opts.Seed})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Step(prev, full, opts); err != nil {
			b.Fatal(err)
		}
	}
}
