// Package core implements DisMASTD itself — the distributed
// multi-aspect streaming tensor decomposition of Section IV.
//
// One streaming step distributes the relative complement X \ X̃ across
// M workers with a per-mode slice partitioning (GTP or MTP), replicates
// the R×R intermediate products on every worker, and then iterates, per
// mode:
//
//  1. distributed MTTKRP over each worker's local entries (IV-B1),
//  2. row-wise factor update of the worker's owned rows (IV-B2),
//  3. all-to-all reduction of the partial Gram products ÃᵀA⁰, A⁰ᵀA⁰,
//     A¹ᵀA¹ (IV-B3),
//  4. subscription-based exchange of the updated factor rows,
//
// and finally evaluates the loss by reusing the MTTKRP result and the
// freshly reduced Gram products (IV-B4) — no second pass over the
// tensor data.
//
// The update rules are identical to the centralized DTD of
// internal/dtd; the equivalence tests in this package verify that the
// distributed computation reproduces DTD's factors to floating-point
// reordering tolerance.
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"dismastd/internal/cluster"
	"dismastd/internal/dplan"
	"dismastd/internal/dtd"
	"dismastd/internal/layout"
	"dismastd/internal/mat"
	"dismastd/internal/mttkrp"
	"dismastd/internal/obs"
	"dismastd/internal/par"
	"dismastd/internal/partition"
	"dismastd/internal/sample"
	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

// Options configures a distributed streaming step.
type Options struct {
	Rank     int     // R (required, > 0)
	MaxIters int     // ALS sweeps per step; default 10
	Tol      float64 // relative loss-change stop threshold; default 1e-6
	Mu       float64 // forgetting factor; default 0.8
	Seed     uint64  // growth-block initialisation seed; default 1

	Workers int              // cluster size M (required, > 0)
	Parts   int              // partitions per mode; default Workers
	Method  partition.Method // GTP or MTP

	// Threads sizes each worker's shared-memory pool: every rank runs
	// its MTTKRP, row solves and Gram partials on Threads goroutines.
	// 0 or 1 means sequential. Results are bitwise identical at every
	// value (see internal/par).
	Threads int

	// Layout selects the kernel representation each rank sweeps on (see
	// internal/layout): COO (default) or Compiled, which compiles the
	// rank's slice of the complement once per step, cached per entry
	// list — an elastic re-partition hands ranks new entry lists and so
	// recompiles. Factors are bitwise identical under either.
	Layout layout.Kind

	// RankWeights optionally skews the partitioning by per-rank cost
	// weights (index = rank, length = Workers): the planner minimises
	// weighted completion time, so a rank with weight 2 — twice the
	// measured cost per entry — receives roughly half the entries. Nil
	// means uniform and reproduces the unweighted plan bitwise. The
	// elastic driver's imbalance detector feeds EWMA-derived weights in
	// here when a fence-time rebalance fires.
	RankWeights []float64

	// Solver selects each rank's least-squares strategy: sample.Exact
	// (default) sweeps the rank's full entry lists; sample.Sampled runs
	// the leverage-score sketch of internal/sample over the rank's
	// partition instead. The sampled solver forces the broadcast row
	// exchange — leverage scores need every row of every replica fresh,
	// and a drawn tuple can land on any row, so the subscription sets of
	// the exact plan no longer bound what a rank reads (the
	// tensor-stationary layout's communication cost; see DESIGN.md).
	Solver sample.Kind
	// Samples is the per-mode sketch size S each rank draws; 0 selects
	// sample.DefaultSamples.
	Samples int

	// BroadcastRows replaces the subscription-based row exchange with a
	// full broadcast of every owner's rows (ablation baseline; implied
	// by the sampled solver).
	BroadcastRows bool
	// NaiveLoss recomputes the tensor-model inner product with a second
	// pass over the entries instead of reusing the MTTKRP result
	// (ablation baseline for the Section IV-B4 reuse).
	NaiveLoss bool

	// Obs receives planning-time instrumentation (complement extraction
	// and partitioning spans, partition balance gauges). Per-rank compute
	// instruments come from each Worker's own bundle, not this one. May
	// be nil.
	Obs *obs.Obs
}

func (o *Options) withDefaults() (Options, error) {
	opts := *o
	if opts.Rank <= 0 {
		return opts, fmt.Errorf("core: rank must be positive, got %d", opts.Rank)
	}
	if opts.Workers <= 0 {
		return opts, fmt.Errorf("core: workers must be positive, got %d", opts.Workers)
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 10
	}
	if opts.Tol < 0 {
		return opts, fmt.Errorf("core: negative tolerance %v", opts.Tol)
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-6
	}
	if opts.Mu == 0 {
		opts.Mu = 0.8
	}
	if opts.Mu < 0 || opts.Mu > 1 {
		return opts, fmt.Errorf("core: forgetting factor %v outside (0, 1]", opts.Mu)
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Parts <= 0 {
		opts.Parts = opts.Workers
	}
	if opts.Threads < 0 {
		return opts, fmt.Errorf("core: negative thread count %d", opts.Threads)
	}
	if opts.RankWeights != nil && len(opts.RankWeights) != opts.Workers {
		return opts, fmt.Errorf("core: %d rank weights for %d workers", len(opts.RankWeights), opts.Workers)
	}
	if opts.Threads == 0 {
		opts.Threads = 1
	}
	if opts.Solver != sample.Exact && opts.Solver != sample.Sampled {
		return opts, fmt.Errorf("core: unknown solver %v", opts.Solver)
	}
	if opts.Samples < 0 {
		return opts, fmt.Errorf("core: negative sample count %d", opts.Samples)
	}
	if opts.Samples == 0 {
		opts.Samples = sample.DefaultSamples
	}
	return opts, nil
}

// StepStats reports one distributed streaming step.
type StepStats struct {
	Iters         int
	Loss          float64
	LossTrace     []float64
	ComplementNNZ int
	Imbalance     []float64         // per-mode partition load CV (Table IV statistic)
	Cluster       *cluster.RunStats // measured traffic, work, wall time
	SetupBytes    int64             // estimated one-time distribution cost (Theorem 4)
	Phases        []obs.PhaseStat   // per-phase wall time aggregated across ranks
}

// Step advances the decomposition from prev to the new snapshot on an
// in-process cluster of opts.Workers workers. prev is not modified.
func Step(prev *dtd.State, snapshot *tensor.Tensor, o Options) (*dtd.State, *StepStats, error) {
	job, err := NewStepJob(prev, snapshot, o)
	if err != nil {
		return nil, nil, err
	}
	cl := cluster.NewLocal(job.opts.Workers)
	runStats, err := cl.Run(job.RunWorker)
	if err != nil {
		return nil, nil, err
	}
	st, stats, err := job.Result()
	if err != nil {
		return nil, nil, err
	}
	stats.Cluster = runStats
	stats.Phases = PhasesOf(runStats)
	job.OverrideAlgoMetrics(runStats)
	return st, stats, nil
}

// RankPhases returns each rank's per-phase wall-time aggregates from
// the step's run (index = rank; empty when the run carried no
// instrumentation) — the per-rank view the cluster observability plane
// and the bench imbalance tables consume, where PhasesOf's cross-rank
// merge would hide exactly the skew being measured.
func (s *StepStats) RankPhases() [][]obs.PhaseStat {
	if s.Cluster == nil {
		return nil
	}
	out := make([][]obs.PhaseStat, len(s.Cluster.Ranks))
	for i, rk := range s.Cluster.Ranks {
		if rk.Obs != nil {
			out[i] = obs.AggregatePhases(rk.Obs.Phases)
		}
	}
	return out
}

// PhasesOf merges every rank's span aggregates into one per-phase
// wall-time breakdown (mttkrp, solve, allreduce, exchange, loss).
func PhasesOf(stats *cluster.RunStats) []obs.PhaseStat {
	if stats == nil {
		return nil
	}
	var all []obs.PhaseStat
	for _, rk := range stats.Ranks {
		if rk.Obs != nil {
			all = append(all, rk.Obs.Phases...)
		}
	}
	return obs.AggregatePhases(all)
}

// OverrideAlgoMetrics replaces the run's traffic counters with the
// pre-collection snapshots recorded by each rank, so the reported
// per-step traffic covers the algorithm's iterations only.
func (j *StepJob) OverrideAlgoMetrics(stats *cluster.RunStats) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i := range stats.Ranks {
		if i < len(j.algo) {
			stats.Ranks[i].Metrics = j.algo[i]
		}
	}
}

// NewStepJob validates and prepares one distributed streaming step
// without running it: the complement is extracted, partitioned, and the
// initial stacked factors built. The caller then drives RunWorker once
// per rank on a cluster of its choosing — Step uses an in-process
// cluster; cmd/worker drives the same job across TCP processes, each
// process constructing an identical job from the same inputs
// (deterministic planning makes the SPMD replicas agree).
func NewStepJob(prev *dtd.State, snapshot *tensor.Tensor, o Options) (*StepJob, error) {
	opts, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := checkGrowth(prev, snapshot, opts.Rank); err != nil {
		return nil, err
	}
	if opts.Solver == sample.Sampled {
		// Fail here, at plan time, so the per-rank sampler construction in
		// newWorkerStateFactors can never fail mid-run.
		if err := sample.CheckDims(snapshot.Dims); err != nil {
			return nil, err
		}
	}
	sp := opts.Obs.Span("plan/complement")
	comp := snapshot.Complement(prev.Dims)
	sp.End()
	sp = opts.Obs.Span("plan/partition")
	plan := dplan.BuildWeighted(comp, opts.Workers, opts.Parts, opts.Method, opts.RankWeights)
	sp.End()
	if opts.Obs != nil {
		for _, mp := range plan.ModePlans {
			mp.Observe(opts.Obs.Reg)
		}
	}
	job := &StepJob{
		opts:    opts,
		newDims: append([]int(nil), snapshot.Dims...),
		plan:    plan,
		oldDims: prev.Dims,
		tilde:   prev.Factors,
		init:    initialFactors(prev, snapshot.Dims, opts),
		algo:    make([]cluster.Metrics, opts.Workers),
		caches:  newCaches(opts.Workers),
	}
	job.precompute()
	return job, nil
}

func newCaches(workers int) []*layout.Cache {
	caches := make([]*layout.Cache, workers)
	for i := range caches {
		caches[i] = &layout.Cache{}
	}
	return caches
}

// Workers returns the cluster size the job was planned for.
func (j *StepJob) Workers() int { return j.opts.Workers }

// PlannedLoads returns the per-rank planned load of the step's plan —
// the modelled cost the observability plane's fence feeds its
// imbalance detector.
func (j *StepJob) PlannedLoads() []float64 { return j.plan.RankLoads() }

// Result assembles the new state and summary statistics after every
// rank's RunWorker has returned. The Cluster field of the stats is left
// nil for the caller to fill with its runtime's measurements.
func (j *StepJob) Result() (*dtd.State, *StepStats, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.result == nil {
		return nil, nil, ErrNoResult
	}
	stats := &StepStats{
		Iters:         j.iters,
		Loss:          j.finalLoss,
		LossTrace:     j.lossTrace,
		ComplementNNZ: j.plan.Tensor.NNZ(),
		Imbalance:     j.plan.Imbalance(),
		SetupBytes:    j.plan.SetupBytes(j.opts.Rank),
	}
	st := &dtd.State{Dims: append([]int(nil), j.newDims...), Factors: j.result}
	return st, stats, nil
}

func checkGrowth(prev *dtd.State, snapshot *tensor.Tensor, rank int) error {
	if snapshot.Order() != len(prev.Dims) {
		return fmt.Errorf("%w: order %d vs %d", dtd.ErrDimsMismatch, snapshot.Order(), len(prev.Dims))
	}
	for m, d := range snapshot.Dims {
		if d < prev.Dims[m] {
			return fmt.Errorf("%w: mode %d shrank %d -> %d", dtd.ErrDimsMismatch, m, prev.Dims[m], d)
		}
	}
	for m, f := range prev.Factors {
		if f.Rows != prev.Dims[m] || f.Cols != rank {
			return fmt.Errorf("core: previous factor %d is %dx%d, want %dx%d", m, f.Rows, f.Cols, prev.Dims[m], rank)
		}
	}
	return nil
}

// initialFactors stacks the previous factors over seeded random growth
// blocks, drawing in the same order as dtd.Step so both algorithms
// start from identical matrices.
func initialFactors(prev *dtd.State, newDims []int, opts Options) []*mat.Dense {
	src := xrand.New(opts.Seed)
	out := make([]*mat.Dense, len(newDims))
	for m, d := range newDims {
		growth := mat.RandomUniform(d-prev.Dims[m], opts.Rank, src)
		out[m] = mat.StackRows(prev.Factors[m], growth)
	}
	return out
}

// StepJob carries the read-only shared inputs and the coordinator-side
// outputs of one distributed step. Workers read the shared fields
// concurrently; result fields are written only by rank 0 under mu.
// Build one with NewStepJob.
type StepJob struct {
	opts    Options
	newDims []int
	plan    *dplan.Plan
	oldDims []int
	tilde   []*mat.Dense // previous factors, read-only
	init    []*mat.Dense // initial stacked factors, read-only

	cTilde     float64
	compNormSq float64

	// caches holds one layout cache per rank (index = rank), created up
	// front so concurrent RunWorker calls never share mutable state.
	// Each rank's compiled kernels are memoised here keyed by the
	// identity of its entry lists: rebinding a worker state to the same
	// plan reuses every layout, while an elastic re-partition (new plan,
	// new entry lists) invalidates and recompiles.
	caches []*layout.Cache

	mu        sync.Mutex
	result    []*mat.Dense
	iters     int
	finalLoss float64
	lossTrace []float64
	algo      []cluster.Metrics // per-rank traffic before result collection
}

func (j *StepJob) precompute() {
	n := len(j.tilde)
	grams := make([]*mat.Dense, n)
	for m := 0; m < n; m++ {
		grams[m] = mat.Gram(j.tilde[m])
	}
	j.cTilde = mat.SumAll(mat.HadamardAll(grams...))
	j.compNormSq = j.plan.Tensor.NormSq()
}

// gramState is the replicated R×R intermediate set for one mode. The
// three matrices are allocated once per worker and refreshed in place
// by each all-reduce.
type gramState struct {
	g0    *mat.Dense // A^(0)ᵀA^(0)
	g1    *mat.Dense // A^(1)ᵀA^(1)
	cross *mat.Dense // ÃᵀA^(0)
}

// workerState is one rank's complete working set for a step: the local
// factor replicas, the replicated Gram state, and every scratch buffer
// the sweep needs. Everything is sized in newWorkerState, so the
// steady-state compute path — MTTKRP, denominators, row updates, Gram
// partials, loss — performs zero heap allocations; only the transport
// collectives (all-reduce, row exchange) allocate.
type workerState struct {
	job *StepJob
	w   *cluster.Worker

	full  []*mat.Dense // local replica of the stacked factors
	mbuf  []*mat.Dense // per-mode MTTKRP buffers, zeroed each sweep
	grams []*gramState // replicated Gram state, refreshed in place
	lastM *mat.Dense   // final mode's MTTKRP, reused by the loss

	ws  *mat.Workspace
	tmp []float64 // per-entry product buffer (naive loss)

	// Intra-worker parallel runtime: this rank's pool (nil when
	// Threads <= 1), its per-thread workspaces, the pooled kernels,
	// the grouped kernels of this rank's entry lists, and the
	// persistent Gram-partials task. Closed by close().
	pool    *par.Pool
	wss     *mat.WorkspaceSet
	pk      *mat.ParKernels
	pacc    *mttkrp.ParAccumulator
	kernels []mttkrp.Kernel
	gpTask  gramPartialsTask

	d0, d1 *mat.Dense // Eq. (5) denominators
	g0prod *mat.Dense // ∗_{k≠n} g0
	hprod  *mat.Dense // ∗_{k≠n} cross
	sum    *mat.Dense // g0+g1 scratch

	// Sampled-solver state (nil/unused under the exact solver): each
	// rank sketches its own partition with draw streams keyed by its
	// rank, and Ĝ overwrites d1 after the exact R×R chains.
	smp *sample.Sampler
	gs  *mat.Dense

	g0p, g1p, crossp *mat.Dense // local Gram partials, zeroed each reduce
	batch            []float64  // 3R² all-reduce payload, rebuilt in place
	exch             *dplan.Exchanger

	ownedOld, ownedNew [][]int32 // per-mode owned rows split at oldDims

	fullG         []*mat.Dense // per-mode g0+g1, rebuilt by the loss
	zeroG, crossG []*mat.Dense // stable aliases of grams[m].g0 / .cross
	h             *mat.Dense   // Hadamard-chain loss scratch

	trace []float64
	iters int

	// Instrumentation, pre-resolved at construction so the sweeps stay
	// allocation-free: one span-name set per mode and counter handles for
	// the hot-path totals. obs (and thus every handle) may be nil.
	obs       *obs.Obs
	names     []phaseNames
	cMttkrp   *obs.Counter // mttkrp.rows: MTTKRP row accumulations (entries)
	cSolve    *obs.Counter // solve.rows: factor rows updated by Eq. (5)
	cAllBytes *obs.Counter // allreduce.bytes: batched Gram payload bytes sent
}

// phaseNames are one mode's span names, formatted once so per-sweep
// tracing never builds strings.
type phaseNames struct {
	mttkrp, chunk, solve, allreduce, exchange string
}

func newWorkerState(j *StepJob, w *cluster.Worker) *workerState {
	warm := make([]*mat.Dense, len(j.init))
	for m := range warm {
		warm[m] = j.init[m].Clone()
	}
	return newWorkerStateFactors(j, w, warm)
}

// newWorkerStateFactors builds a worker state around externally owned
// factor replicas instead of cloning the job's initial stack — how the
// elastic driver rebinds a rank's warm factors to a rebuilt plan after
// a view change. The matrices are adopted, not copied.
func newWorkerStateFactors(j *StepJob, w *cluster.Worker, warm []*mat.Dense) *workerState {
	n := len(j.init)
	r := j.opts.Rank
	st := &workerState{
		job:   j,
		w:     w,
		ws:    mat.NewWorkspace(),
		tmp:   make([]float64, r),
		batch: make([]float64, 0, 3*r*r),
		trace: make([]float64, 0, j.opts.MaxIters),
		pool:  par.New(j.opts.Threads),
	}
	st.gpTask.st = st
	st.exch = dplan.NewExchanger(w, j.plan)
	st.wss = mat.NewWorkspaceSet(st.pool.Threads())
	st.pk = mat.NewParKernels(st.pool, st.wss)
	st.pacc = mttkrp.NewParAccumulator(st.pool, st.wss, w.Obs())
	st.kernels = make([]mttkrp.Kernel, n)
	for m := 0; m < n; m++ {
		st.kernels[m] = mttkrp.CachedKernelOf(j.caches[w.Rank()], j.plan.Tensor, m, j.plan.EntryLists[w.Rank()][m], j.opts.Layout)
	}
	st.full = make([]*mat.Dense, n)
	st.mbuf = make([]*mat.Dense, n)
	st.grams = make([]*gramState, n)
	st.fullG = make([]*mat.Dense, n)
	st.zeroG = make([]*mat.Dense, n)
	st.crossG = make([]*mat.Dense, n)
	st.ownedOld = make([][]int32, n)
	st.ownedNew = make([][]int32, n)
	for m := 0; m < n; m++ {
		st.full[m] = warm[m]
		st.mbuf[m] = mat.New(st.full[m].Rows, r)
		st.grams[m] = &gramState{g0: mat.New(r, r), g1: mat.New(r, r), cross: mat.New(r, r)}
		st.fullG[m] = mat.New(r, r)
		st.zeroG[m] = st.grams[m].g0
		st.crossG[m] = st.grams[m].cross
		old := j.oldDims[m]
		for _, s := range j.plan.OwnedSlices[m][w.Rank()] {
			if int(s) < old {
				st.ownedOld[m] = append(st.ownedOld[m], s)
			} else {
				st.ownedNew[m] = append(st.ownedNew[m], s)
			}
		}
	}
	if j.opts.Solver == sample.Sampled {
		smp, err := sample.New(j.plan.Tensor, j.plan.EntryLists[w.Rank()], r, j.opts.Samples, j.opts.Seed, w.Rank())
		if err != nil {
			// NewStepJob ran sample.CheckDims on these dims already.
			panic(fmt.Sprintf("core: sampler construction failed after CheckDims: %v", err))
		}
		st.smp = smp
		st.gs = mat.New(r, r)
	}
	st.d0 = mat.New(r, r)
	st.d1 = mat.New(r, r)
	st.g0prod = mat.New(r, r)
	st.hprod = mat.New(r, r)
	st.sum = mat.New(r, r)
	st.g0p = mat.New(r, r)
	st.g1p = mat.New(r, r)
	st.crossp = mat.New(r, r)
	st.h = mat.New(r, r)
	st.obs = w.Obs()
	st.names = make([]phaseNames, n)
	for m := 0; m < n; m++ {
		st.names[m] = phaseNames{
			mttkrp:    fmt.Sprintf("mode%d/mttkrp", m),
			chunk:     fmt.Sprintf("mode%d/mttkrp.chunk", m),
			solve:     fmt.Sprintf("mode%d/solve", m),
			allreduce: fmt.Sprintf("mode%d/allreduce", m),
			exchange:  fmt.Sprintf("mode%d/exchange", m),
		}
	}
	st.cMttkrp = st.obs.Counter("mttkrp.rows")
	st.cSolve = st.obs.Counter("solve.rows")
	st.cAllBytes = st.obs.Counter("allreduce.bytes")
	return st
}

// close releases the worker's pool goroutines.
func (st *workerState) close() { st.pool.Close() }

// RunWorker is the SPMD body executed by every rank. It must be called
// exactly once per rank of a cluster of Workers() size.
func (j *StepJob) RunWorker(w *cluster.Worker) error {
	st := newWorkerState(j, w)
	defer st.close()
	me := w.Rank()

	if err := st.establishGrams(); err != nil {
		return err
	}

	prevLoss := math.Inf(1)
	for sweep := 0; sweep < j.opts.MaxIters; sweep++ {
		loss, err := st.sweepOnce(sweep)
		if err != nil {
			return err
		}
		st.iters = sweep + 1
		st.trace = append(st.trace, loss)
		stop := relChange(prevLoss, loss) < j.opts.Tol
		prevLoss = loss
		if stop {
			break
		}
	}

	// Record algorithm-only traffic: the result gather below is a
	// one-time O(NIR) collection, already covered by the Theorem 4
	// setup/teardown term, not a per-iteration cost.
	j.mu.Lock()
	j.algo[me] = w.MetricsSnapshot()
	j.mu.Unlock()

	if err := j.gatherResult(w, st.full); err != nil {
		return err
	}
	if me == 0 {
		j.mu.Lock()
		j.iters = st.iters
		j.lossTrace = st.trace
		j.finalLoss = st.trace[len(st.trace)-1]
		j.mu.Unlock()
	}
	return nil
}

// establishGrams builds the replicated Gram state with an initial
// all-reduce of per-owner partials — once at step start, and again by
// the elastic driver whenever row ownership changes mid-step.
func (st *workerState) establishGrams() error {
	for m := range st.full {
		sp := st.obs.Span(st.names[m].allreduce)
		err := st.reduceGrams(m)
		sp.End()
		if err != nil {
			return err
		}
		if st.smp != nil {
			st.refreshDist(m)
		}
	}
	return nil
}

// refreshDist rebuilds mode m's draw distribution from this rank's
// factor replica and the freshly reduced full Gram. Valid only when
// every row of the replica is globally fresh — which the sampled
// solver's forced broadcast exchange guarantees.
func (st *workerState) refreshDist(m int) {
	g := st.grams[m]
	st.sum.Add(g.g0, g.g1)
	st.smp.Refresh(m, st.full[m], st.sum)
}

// sweepOnce runs one full ALS sweep — the four per-mode phases followed
// by the loss evaluation — and returns the sweep's loss.
func (st *workerState) sweepOnce(sweep int) (float64, error) {
	j := st.job
	st.obs.SetIter(sweep)
	for m := range st.full {
		// 1. Distributed MTTKRP over this worker's mode-m entries — or
		// the leverage-score sketch of them under the sampled solver.
		sp := st.obs.Span(st.names[m].mttkrp)
		if st.smp != nil {
			st.sampledMttkrp(m)
		} else {
			st.mttkrpMode(m)
		}
		sp.End()

		// 2. Row-wise update of owned rows.
		sp = st.obs.Span(st.names[m].solve)
		st.denominators(m)
		if st.smp != nil {
			// Ĝ estimates the ∗_{k≠m}(g0+g1) chain the exact path just
			// built; the O(R²) g0prod/hprod chains stay exact, so d0 is
			// recomposed around the sketched d1.
			st.d1.CopyFrom(st.gs)
			st.d0.Scale(-(1 - j.opts.Mu), st.g0prod)
			st.d0.Add(st.d0, st.d1)
		}
		st.updateOwnedRows(m)
		sp.End()

		// 3. All-to-all reduction of the partial Gram products.
		sp = st.obs.Span(st.names[m].allreduce)
		err := st.reduceGrams(m)
		sp.End()
		if err != nil {
			return 0, err
		}

		// 4. Push updated rows to subscribers — every replica under the
		// sampled solver, which needs all rows globally fresh before the
		// next leverage refresh.
		sp = st.obs.Span(st.names[m].exchange)
		err = st.exch.Exchange(m, st.full[m], j.opts.BroadcastRows || st.smp != nil)
		sp.End()
		if err != nil {
			return 0, err
		}
		if st.smp != nil {
			st.refreshDist(m)
		}
	}

	sp := st.obs.Span("loss")
	loss, err := st.loss()
	sp.End()
	return loss, err
}

// mttkrpMode zeroes the mode's MTTKRP buffer and accumulates this
// worker's entries into it via the row-grouped view of the plan's
// per-mode entry list, chunked across the rank's pool, recording it as
// the loss's reusable lastM. (The grouped kernel reproduces the flat
// scatter bit-for-bit: each output row starts at +0 and its entries
// accumulate in entry-list order.)
func (st *workerState) mttkrpMode(mode int) {
	j := st.job
	M := st.mbuf[mode]
	M.Zero()
	comp := j.plan.Tensor
	st.pacc.Accumulate(M, st.kernels[mode], st.full, st.names[mode].chunk)
	nnz := st.kernels[mode].NNZ()
	st.w.AddWork(float64(nnz) * float64(comp.Order()) * float64(M.Cols))
	st.cMttkrp.Add(int64(nnz))
	st.lastM = M
}

// sampledMttkrp fills the mode's buffer with the sketched MTTKRP M̂ of
// this rank's partition and st.gs with the sketched Khatri-Rao Gram Ĝ.
// lastM becomes the sketch, so the reuse-based loss — and the Tol stop
// it drives — is an unbiased estimate; LossAgainst gives the exact one.
func (st *workerState) sampledMttkrp(mode int) {
	M := st.mbuf[mode]
	matched := st.smp.Sample(mode, st.full, st.pacc, st.pk, M, st.gs, st.names[mode].chunk)
	// S draws each build a Khatri-Rao row (plus the S×R Gram), and the
	// matched entries pay the usual per-entry accumulate.
	st.w.AddWork(float64(st.smp.Samples()+matched) * float64(len(st.full)) * float64(M.Cols))
	st.cMttkrp.Add(int64(matched))
	st.lastM = M
}

// denominators fills d1 = ∗_{k≠mode}(g0+g1), g0prod = ∗_{k≠mode} g0,
// hprod = ∗_{k≠mode} cross and d0 = d1 − (1−μ)·g0prod — the Eq. (5)
// denominator set — falling back to the identity for first-order
// tensors (no other modes).
func (st *workerState) denominators(mode int) {
	first := true
	for k, g := range st.grams {
		if k == mode {
			continue
		}
		st.sum.Add(g.g0, g.g1)
		if first {
			st.d1.CopyFrom(st.sum)
			st.g0prod.CopyFrom(g.g0)
			st.hprod.CopyFrom(g.cross)
			first = false
		} else {
			st.d1.Hadamard(st.d1, st.sum)
			st.g0prod.Hadamard(st.g0prod, g.g0)
			st.hprod.Hadamard(st.hprod, g.cross)
		}
	}
	if first {
		st.d1.SetIdentity()
		st.g0prod.SetIdentity()
		st.hprod.SetIdentity()
	}
	st.d0.Scale(-(1 - st.job.opts.Mu), st.g0prod)
	st.d0.Add(st.d0, st.d1)
}

// updateOwnedRows applies the Eq. (5) row-wise updates to the rows this
// worker owns in the given mode, in place, with all block scratch taken
// from the workspace.
func (st *workerState) updateOwnedRows(mode int) {
	j := st.job
	factor := st.full[mode]
	M := st.mbuf[mode]
	r := factor.Cols
	oldRows := st.ownedOld[mode]
	newRows := st.ownedNew[mode]

	mark := st.ws.Mark()
	if len(oldRows) > 0 {
		// Numerator block: μ·Ã[rows]·Hprod + M[rows], solved in place.
		tblock := st.ws.Take(len(oldRows), r)
		for i, s := range oldRows {
			copy(tblock.Row(i), j.tilde[mode].Row(int(s)))
		}
		num := st.ws.Take(len(oldRows), r)
		st.pk.MulInto(num, tblock, st.hprod)
		num.Scale(j.opts.Mu, num)
		for i, s := range oldRows {
			row := num.Row(i)
			src := M.Row(int(s))
			for c := range row {
				row[c] += src[c]
			}
		}
		st.pk.SolveRightRidgeInto(num, num, st.d0)
		for i, s := range oldRows {
			copy(factor.Row(int(s)), num.Row(i))
		}
	}
	if len(newRows) > 0 {
		num := st.ws.Take(len(newRows), r)
		for i, s := range newRows {
			copy(num.Row(i), M.Row(int(s)))
		}
		st.pk.SolveRightRidgeInto(num, num, st.d1)
		for i, s := range newRows {
			copy(factor.Row(int(s)), num.Row(i))
		}
	}
	st.ws.Release(mark)
	// Old rows pay the μ·Ã·Hprod product plus the solve (2R² each), new
	// rows just the solve (R²); the two R×R factorisations are R³ each.
	rr := float64(r) * float64(r)
	st.w.AddWork((2*float64(len(oldRows))+float64(len(newRows)))*rr + 2*float64(r)*rr)
	st.cSolve.Add(int64(len(oldRows) + len(newRows)))
}

// gramPartials computes this worker's partial ÃᵀA⁰, A⁰ᵀA⁰, A¹ᵀA¹ over
// its owned rows into the persistent partial matrices and packs them
// into the batch payload. The three R×R partials are computed with
// their rows chunked across the rank's pool; every chunk scans the
// owned rows in order, so each partial entry accumulates exactly the
// sequential sequence.
func (st *workerState) gramPartials(mode int) {
	j := st.job
	r := st.full[mode].Cols
	st.gpTask.mode = mode
	st.pool.For(r, &st.gpTask)
	oldRows := len(st.ownedOld[mode])
	owned := j.plan.OwnedSlices[mode][st.w.Rank()]
	// Old rows contribute two outer products (G⁰ and the cross term),
	// new rows one.
	st.w.AddWork((2*float64(oldRows) + float64(len(owned)-oldRows)) * float64(r) * float64(r))

	st.batch = st.batch[:0]
	st.batch = append(st.batch, st.g0p.Data...)
	st.batch = append(st.batch, st.g1p.Data...)
	st.batch = append(st.batch, st.crossp.Data...)
}

// gramPartialsTask evaluates rows [lo, hi) of the mode's three Gram
// partials (the sequential outer-product loop transposed so output
// rows, not input rows, are the parallel axis).
type gramPartialsTask struct {
	st   *workerState
	mode int
}

func (t *gramPartialsTask) RunChunk(lo, hi, tid int) {
	st := t.st
	j := st.job
	factor := st.full[t.mode]
	tilde := j.tilde[t.mode]
	old := j.oldDims[t.mode]
	for i := lo; i < hi; i++ {
		zeroRow(st.g0p.Row(i))
		zeroRow(st.g1p.Row(i))
		zeroRow(st.crossp.Row(i))
	}
	for _, s := range j.plan.OwnedSlices[t.mode][st.w.Rank()] {
		row := factor.Row(int(s))
		if int(s) < old {
			trow := tilde.Row(int(s))
			for i := lo; i < hi; i++ {
				if av := row[i]; av != 0 {
					drow := st.g0p.Row(i)
					for c, bv := range row {
						drow[c] += av * bv
					}
				}
				if tv := trow[i]; tv != 0 {
					drow := st.crossp.Row(i)
					for c, bv := range row {
						drow[c] += tv * bv
					}
				}
			}
		} else {
			for i := lo; i < hi; i++ {
				av := row[i]
				if av == 0 {
					continue
				}
				drow := st.g1p.Row(i)
				for c, bv := range row {
					drow[c] += av * bv
				}
			}
		}
	}
}

func zeroRow(row []float64) {
	for i := range row {
		row[i] = 0
	}
}

// applyGramSums unpacks a reduced 3R² vector into the mode's replicated
// Gram state.
func (st *workerState) applyGramSums(mode int, sum []float64) {
	r := st.job.opts.Rank
	g := st.grams[mode]
	copy(g.g0.Data, sum[:r*r])
	copy(g.g1.Data, sum[r*r:2*r*r])
	copy(g.cross.Data, sum[2*r*r:])
}

// reduceGrams all-reduces the worker's Gram partials in one batched
// vector and refreshes the mode's replicated state in place. The
// reduction is in-place over st.batch, so the collective rides pooled
// transport buffers and nothing on this path allocates.
func (st *workerState) reduceGrams(mode int) error {
	st.gramPartials(mode)
	st.cAllBytes.Add(int64(8 * len(st.batch)))
	if err := st.w.AllReduceSumInPlace(st.batch); err != nil {
		return err
	}
	st.applyGramSums(mode, st.batch)
	return nil
}

// loss evaluates √L of Eq. (4): the local inner-product term, one
// scalar reduction, then the Gram-state finish — split so the compute
// halves are separately testable for allocation-freedom.
func (st *workerState) loss() (float64, error) {
	inner, err := st.w.ReduceScalarSum(st.lossLocalInner())
	if err != nil {
		return 0, err
	}
	return st.lossFinish(inner), nil
}

// lossLocalInner computes this worker's share of the tensor-model inner
// product, reusing the final mode's MTTKRP rows (owned rows only), or —
// under the NaiveLoss ablation — a full second pass over the entries.
func (st *workerState) lossLocalInner() float64 {
	j := st.job
	n := len(st.full)
	r := j.opts.Rank

	var localInner float64
	if j.opts.NaiveLoss {
		comp := j.plan.Tensor
		tmp := st.tmp
		entries := j.plan.EntryLists[st.w.Rank()][n-1]
		for _, e := range entries {
			base := int(e) * n
			for c := range tmp {
				tmp[c] = 1
			}
			for k := 0; k < n; k++ {
				row := st.full[k].Row(int(comp.Coords[base+k]))
				for c := range tmp {
					tmp[c] *= row[c]
				}
			}
			s := 0.0
			for _, v := range tmp {
				s += v
			}
			localInner += comp.Vals[e] * s
		}
		st.w.AddWork(float64(len(entries)) * float64(n) * float64(r))
	} else {
		last := n - 1
		for _, s := range j.plan.OwnedSlices[last][st.w.Rank()] {
			mrow := st.lastM.Row(int(s))
			arow := st.full[last].Row(int(s))
			for c := range mrow {
				localInner += mrow[c] * arow[c]
			}
		}
		st.w.AddWork(float64(len(j.plan.OwnedSlices[last][st.w.Rank()])) * float64(r))
	}
	return localInner
}

// lossFinish turns the reduced inner product and the replicated Gram
// state into √L, entirely from persistent scratch.
func (st *workerState) lossFinish(inner float64) float64 {
	j := st.job
	n := len(st.full)
	for m := 0; m < n; m++ {
		st.fullG[m].Add(st.grams[m].g0, st.grams[m].g1)
	}
	mat.HadamardAllInto(st.h, st.zeroG...)
	model0Sq := mat.SumAll(st.h)
	mat.HadamardAllInto(st.h, st.fullG...)
	modelFullSq := mat.SumAll(st.h)
	mat.HadamardAllInto(st.h, st.crossG...)
	crossOld := mat.SumAll(st.h)

	oldTerm := j.opts.Mu * (j.cTilde + model0Sq - 2*crossOld)
	newTerm := j.compNormSq - 2*inner + (modelFullSq - model0Sq)
	l := oldTerm + newTerm
	if l < 0 {
		l = 0
	}
	return math.Sqrt(l)
}

// gatherResult collects every worker's owned rows at rank 0 and
// assembles the final factors there.
func (j *StepJob) gatherResult(w *cluster.Worker, full []*mat.Dense) error {
	n := len(full)
	r := j.opts.Rank
	var result []*mat.Dense
	if w.Rank() == 0 {
		result = make([]*mat.Dense, n)
	}
	maxOwned := 0
	for m := 0; m < n; m++ {
		if len(j.plan.OwnedSlices[m][w.Rank()]) > maxOwned {
			maxOwned = len(j.plan.OwnedSlices[m][w.Rank()])
		}
	}
	buf := make([]float64, 0, maxOwned*r)
	for m := 0; m < n; m++ {
		owned := j.plan.OwnedSlices[m][w.Rank()]
		buf = buf[:0]
		for _, s := range owned {
			buf = append(buf, full[m].Row(int(s))...)
		}
		parts, err := w.GatherBytes(0, cluster.EncodeFloat64s(buf))
		if err != nil {
			return err
		}
		if w.Rank() != 0 {
			continue
		}
		out := mat.New(full[m].Rows, r)
		for rank, payload := range parts {
			vals, err := cluster.DecodeFloat64s(payload)
			if err != nil {
				return err
			}
			rows := j.plan.OwnedSlices[m][rank]
			if len(vals) != len(rows)*r {
				return fmt.Errorf("core: gather mode %d rank %d: %d values for %d rows", m, rank, len(vals), len(rows))
			}
			for i, s := range rows {
				copy(out.Row(int(s)), vals[i*r:(i+1)*r])
			}
		}
		result[m] = out
	}
	if w.Rank() == 0 {
		j.mu.Lock()
		j.result = result
		j.mu.Unlock()
	}
	return nil
}

func relChange(prev, cur float64) float64 {
	if math.IsInf(prev, 1) {
		return math.Inf(1)
	}
	return math.Abs(prev-cur) / math.Max(prev, 1e-12)
}

// ErrNoResult is returned when a run completes without rank 0
// assembling factors (should not happen; defensive).
var ErrNoResult = errors.New("core: run completed without a result")
