package core

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"dismastd/internal/cluster"
	"dismastd/internal/cp"
	"dismastd/internal/dtd"
	"dismastd/internal/mat"
	"dismastd/internal/partition"
	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

func sparseRandom(dims []int, nnz int, seed uint64) *tensor.Tensor {
	src := xrand.New(seed)
	b := tensor.NewBuilder(dims)
	idx := make([]int, len(dims))
	for e := 0; e < nnz; e++ {
		for m, d := range dims {
			idx[m] = src.Intn(d)
		}
		b.Append(idx, src.Float64()+0.5)
	}
	return b.Build()
}

// relDiff returns the largest elementwise difference between factor
// sets, normalised by the largest magnitude.
func relDiff(a, b []*mat.Dense) float64 {
	var maxDiff, maxMag float64
	for m := range a {
		if d := mat.MaxAbsDiff(a[m], b[m]); d > maxDiff {
			maxDiff = d
		}
		for _, v := range a[m].Data {
			if av := math.Abs(v); av > maxMag {
				maxMag = av
			}
		}
	}
	return maxDiff / math.Max(maxMag, 1e-12)
}

func initState(t *testing.T, snap *tensor.Tensor, rank int, seed uint64) *dtd.State {
	t.Helper()
	st, _, err := dtd.Init(snap, dtd.Options{Rank: rank, MaxIters: 20, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestDistributedMatchesCentralizedDTD(t *testing.T) {
	full := sparseRandom([]int{25, 20, 15}, 1500, 1)
	prevDims := []int{20, 16, 12}
	prev := initState(t, full.Prefix(prevDims), 4, 3)

	dOpts := dtd.Options{Rank: 4, MaxIters: 7, Tol: 0, Mu: 0.8, Seed: 5}
	want, wantStats, err := dtd.Step(prev, full, dOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []partition.Method{partition.GTPMethod, partition.MTPMethod} {
		for _, workers := range []int{1, 2, 4} {
			got, gotStats, err := Step(prev, full, Options{
				Rank: 4, MaxIters: 7, Tol: 0, Mu: 0.8, Seed: 5,
				Workers: workers, Method: method,
			})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", method, workers, err)
			}
			if d := relDiff(got.Factors, want.Factors); d > 1e-8 {
				t.Fatalf("%v workers=%d: factors differ from DTD by %v", method, workers, d)
			}
			if math.Abs(gotStats.Loss-wantStats.Loss) > 1e-8*(1+wantStats.Loss) {
				t.Fatalf("%v workers=%d: loss %v vs DTD %v", method, workers, gotStats.Loss, wantStats.Loss)
			}
			if gotStats.Iters != wantStats.Iters {
				t.Fatalf("%v workers=%d: %d iters vs DTD %d", method, workers, gotStats.Iters, wantStats.Iters)
			}
		}
	}
}

func TestAblationVariantsMatchDefault(t *testing.T) {
	full := sparseRandom([]int{18, 15, 12}, 800, 7)
	prev := initState(t, full.Prefix([]int{14, 12, 10}), 3, 9)
	base, baseStats, err := Step(prev, full, Options{Rank: 3, MaxIters: 5, Tol: 0, Workers: 3, Method: partition.MTPMethod, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for name, opts := range map[string]Options{
		"broadcast rows": {Rank: 3, MaxIters: 5, Tol: 0, Workers: 3, Method: partition.MTPMethod, Seed: 11, BroadcastRows: true},
		"naive loss":     {Rank: 3, MaxIters: 5, Tol: 0, Workers: 3, Method: partition.MTPMethod, Seed: 11, NaiveLoss: true},
	} {
		got, gotStats, err := Step(prev, full, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d := relDiff(got.Factors, base.Factors); d > 1e-9 {
			t.Fatalf("%s: factors differ by %v", name, d)
		}
		if math.Abs(gotStats.Loss-baseStats.Loss) > 1e-8*(1+baseStats.Loss) {
			t.Fatalf("%s: loss %v vs %v", name, gotStats.Loss, baseStats.Loss)
		}
	}
}

func TestBroadcastRowsCostsMoreTraffic(t *testing.T) {
	full := sparseRandom([]int{300, 250, 200}, 1500, 13)
	prev := initState(t, full.Prefix([]int{220, 200, 150}), 5, 15)
	run := func(broadcast bool) int64 {
		_, stats, err := Step(prev, full, Options{Rank: 5, MaxIters: 3, Tol: 0, Workers: 4, Method: partition.MTPMethod, Seed: 17, BroadcastRows: broadcast})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Cluster.TotalBytes()
	}
	if sub, bc := run(false), run(true); sub >= bc {
		t.Fatalf("subscription traffic %d not below broadcast %d", sub, bc)
	}
}

func TestLossReuseCheaperThanNaive(t *testing.T) {
	full := sparseRandom([]int{60, 50, 40}, 5000, 19)
	prev := initState(t, full.Prefix([]int{45, 40, 30}), 5, 21)
	run := func(naive bool) float64 {
		_, stats, err := Step(prev, full, Options{Rank: 5, MaxIters: 3, Tol: 0, Workers: 2, Method: partition.GTPMethod, Seed: 23, NaiveLoss: naive})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Cluster.TotalWork()
	}
	if reuse, naive := run(false), run(true); reuse >= naive {
		t.Fatalf("reuse work %v not below naive %v", reuse, naive)
	}
}

func TestSingleWorkerIsCentralized(t *testing.T) {
	full := sparseRandom([]int{12, 12, 12}, 400, 25)
	prev := initState(t, full.Prefix([]int{9, 9, 9}), 3, 27)
	got, stats, err := Step(prev, full, Options{Rank: 3, MaxIters: 4, Tol: 0, Workers: 1, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := dtd.Step(prev, full, dtd.Options{Rank: 3, MaxIters: 4, Tol: 0, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(got.Factors, want.Factors); d > 1e-8 {
		t.Fatalf("single-worker differs by %v", d)
	}
	// A single worker exchanges no factor rows; the only traffic is the
	// degenerate collectives.
	if stats.Cluster.Ranks[0].MsgsSent != 0 {
		t.Fatalf("single worker sent %d messages", stats.Cluster.Ranks[0].MsgsSent)
	}
}

func TestFinerPartitionsThanWorkers(t *testing.T) {
	full := sparseRandom([]int{30, 25, 20}, 1200, 31)
	prev := initState(t, full.Prefix([]int{24, 20, 16}), 3, 33)
	want, _, err := dtd.Step(prev, full, dtd.Options{Rank: 3, MaxIters: 4, Tol: 0, Seed: 35})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Step(prev, full, Options{Rank: 3, MaxIters: 4, Tol: 0, Workers: 3, Parts: 9, Method: partition.MTPMethod, Seed: 35})
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(got.Factors, want.Factors); d > 1e-8 {
		t.Fatalf("parts=9 differs by %v", d)
	}
}

func TestFourthOrderDistributed(t *testing.T) {
	full := sparseRandom([]int{10, 9, 8, 7}, 700, 37)
	prev := initState(t, full.Prefix([]int{8, 7, 6, 6}), 3, 39)
	want, _, err := dtd.Step(prev, full, dtd.Options{Rank: 3, MaxIters: 3, Tol: 0, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Step(prev, full, Options{Rank: 3, MaxIters: 3, Tol: 0, Workers: 4, Method: partition.GTPMethod, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(got.Factors, want.Factors); d > 1e-8 {
		t.Fatalf("4th-order differs by %v", d)
	}
}

func TestStreamingSequenceEndToEnd(t *testing.T) {
	full := sparseRandom([]int{30, 28, 26}, 4000, 43)
	seq, err := tensor.NewSequence(full, [][]int{{22, 21, 20}, {26, 24, 23}, {30, 28, 26}})
	if err != nil {
		t.Fatal(err)
	}
	st := initState(t, seq.Snapshot(0), 4, 45)
	for i := 1; i < seq.Len(); i++ {
		snap := seq.Snapshot(i)
		var stats *StepStats
		st, stats, err = Step(st, snap, Options{Rank: 4, MaxIters: 10, Workers: 4, Method: partition.MTPMethod, Seed: 47})
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if stats.ComplementNNZ <= 0 {
			t.Fatalf("step %d touched no data", i)
		}
		loss := cp.LossAgainst(snap, st.Factors)
		if math.IsNaN(loss) || math.IsInf(loss, 0) {
			t.Fatalf("step %d produced non-finite loss", i)
		}
	}
}

func TestCommunicationScalesWithTheorem4(t *testing.T) {
	// Theorem 4: per-iteration communication is O(MNR² + NIR + NdR) —
	// independent of nnz. Doubling the complement nnz with fixed dims
	// must leave iteration traffic roughly unchanged, while doubling R
	// must increase it.
	dims := []int{40, 40, 40}
	prevDims := []int{30, 30, 30}
	small := sparseRandom(dims, 2000, 49)
	big := sparseRandom(dims, 8000, 51)
	traffic := func(x *tensor.Tensor, rank int) int64 {
		prev := initState(t, x.Prefix(prevDims), rank, 53)
		_, stats, err := Step(prev, x, Options{Rank: rank, MaxIters: 3, Tol: 0, Workers: 4, Method: partition.MTPMethod, Seed: 55})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Cluster.TotalBytes()
	}
	tSmall := traffic(small, 4)
	tBig := traffic(big, 4)
	ratio := float64(tBig) / float64(tSmall)
	if ratio > 2.0 {
		t.Fatalf("4x nnz grew traffic %.2fx; iteration communication should not scale with nnz", ratio)
	}
	if tR8 := traffic(small, 8); tR8 <= tSmall {
		t.Fatalf("doubling R did not increase traffic (%d vs %d)", tR8, tSmall)
	}
}

func TestOptionValidation(t *testing.T) {
	full := sparseRandom([]int{6, 6, 6}, 50, 57)
	prev := initState(t, full.Prefix([]int{5, 5, 5}), 2, 59)
	cases := map[string]Options{
		"rank 0":     {Rank: 0, Workers: 2},
		"no workers": {Rank: 2, Workers: 0},
		"bad mu":     {Rank: 2, Workers: 2, Mu: 2},
		"bad tol":    {Rank: 2, Workers: 2, Tol: -1},
	}
	for name, opts := range cases {
		if _, _, err := Step(prev, full, opts); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	smaller := sparseRandom([]int{4, 6, 6}, 30, 61)
	if _, _, err := Step(prev, smaller, Options{Rank: 2, Workers: 2}); err == nil {
		t.Fatal("shrinking snapshot accepted")
	}
}

func TestImbalanceReported(t *testing.T) {
	full := sparseRandom([]int{40, 40, 40}, 3000, 63)
	prev := initState(t, full.Prefix([]int{30, 30, 30}), 3, 65)
	_, stats, err := Step(prev, full, Options{Rank: 3, MaxIters: 2, Workers: 5, Method: partition.MTPMethod, Seed: 67})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Imbalance) != 3 {
		t.Fatalf("imbalance %v", stats.Imbalance)
	}
	if stats.SetupBytes <= 0 {
		t.Fatal("setup bytes not reported")
	}
}

func TestStepJobFaultInjection(t *testing.T) {
	// A network fault mid-step must surface as an error from every
	// blocked rank, not a hang: the poisoned mailboxes release them.
	full := sparseRandom([]int{20, 18, 15}, 600, 71)
	prev := initState(t, full.Prefix([]int{16, 14, 12}), 3, 73)
	job, err := NewStepJob(prev, full, Options{Rank: 3, MaxIters: 5, Tol: 0, Workers: 3, Method: partition.MTPMethod, Seed: 75})
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.NewLocal(job.Workers())
	cl.SetRecvTimeout(5 * time.Second)
	var sends int64
	var mu sync.Mutex
	cl.SetSendHook(func(from, to int, tag string) error {
		mu.Lock()
		defer mu.Unlock()
		sends++
		if sends == 40 {
			return errors.New("injected link failure")
		}
		return nil
	})
	done := make(chan struct{})
	var runErr error
	go func() {
		_, runErr = cl.Run(job.RunWorker)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("fault did not release the cluster")
	}
	if runErr == nil {
		t.Fatal("injected fault produced no error")
	}
	if _, _, err := job.Result(); err == nil {
		t.Fatal("failed job still produced a result")
	}
}

func TestMoreWorkersThanSlices(t *testing.T) {
	// Eight workers, tiny tensor: several workers own nothing in some
	// modes; the step must still match the centralized result.
	full := sparseRandom([]int{6, 5, 4}, 60, 77)
	prev := initState(t, full.Prefix([]int{5, 4, 3}), 2, 79)
	want, _, err := dtd.Step(prev, full, dtd.Options{Rank: 2, MaxIters: 4, Tol: 0, Seed: 81})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Step(prev, full, Options{Rank: 2, MaxIters: 4, Tol: 0, Workers: 8, Method: partition.GTPMethod, Seed: 81})
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(got.Factors, want.Factors); d > 1e-8 {
		t.Fatalf("differs from centralized by %v", d)
	}
}

func TestIdleWorkersWithFewParts(t *testing.T) {
	// Parts < Workers leaves workers idle but the result is unchanged.
	full := sparseRandom([]int{25, 20, 18}, 900, 83)
	prev := initState(t, full.Prefix([]int{20, 16, 15}), 3, 85)
	want, _, err := dtd.Step(prev, full, dtd.Options{Rank: 3, MaxIters: 4, Tol: 0, Seed: 87})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := Step(prev, full, Options{Rank: 3, MaxIters: 4, Tol: 0, Workers: 6, Parts: 2, Method: partition.MTPMethod, Seed: 87})
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(got.Factors, want.Factors); d > 1e-8 {
		t.Fatalf("differs from centralized by %v", d)
	}
	// Workers 2..5 own nothing and therefore record no compute work.
	for r := 2; r < 6; r++ {
		if stats.Cluster.Ranks[r].Work > stats.Cluster.Ranks[0].Work/2 {
			t.Fatalf("worker %d should be (nearly) idle: %+v", r, stats.Cluster.Ranks[r].Work)
		}
	}
}

func TestDistributedSoakLongStream(t *testing.T) {
	// Ten multi-aspect steps on a skewed stream with the distributed
	// engine: losses stay finite, factors stay bounded, and the final
	// state matches the centralized DTD run step for step.
	full := sparseRandom([]int{60, 50, 40}, 8000, 91)
	var steps [][]int
	for i := 0; i <= 10; i++ {
		f := 0.5 + 0.05*float64(i)
		steps = append(steps, []int{
			int(60*f + 0.999), int(50*f + 0.999), int(40*f + 0.999),
		})
	}
	seq, err := tensor.NewSequence(full, steps)
	if err != nil {
		t.Fatal(err)
	}
	opts := dtd.Options{Rank: 4, MaxIters: 5, Tol: 0, Seed: 93}
	dState, _, err := dtd.Init(seq.Snapshot(0), opts)
	if err != nil {
		t.Fatal(err)
	}
	cState := dState.Clone()
	for i := 1; i < seq.Len(); i++ {
		snap := seq.Snapshot(i)
		seed := uint64(93 + i)
		dState, _, err = Step(dState, snap, Options{
			Rank: 4, MaxIters: 5, Tol: 0, Workers: 5, Method: partition.MTPMethod, Seed: seed,
		})
		if err != nil {
			t.Fatalf("distributed step %d: %v", i, err)
		}
		var stats *dtd.Stats
		cState, stats, err = dtd.Step(cState, snap, dtd.Options{Rank: 4, MaxIters: 5, Tol: 0, Seed: seed})
		if err != nil {
			t.Fatalf("centralized step %d: %v", i, err)
		}
		if math.IsNaN(stats.Loss) || math.IsInf(stats.Loss, 0) {
			t.Fatalf("step %d loss %v", i, stats.Loss)
		}
		if d := relDiff(dState.Factors, cState.Factors); d > 1e-6 {
			t.Fatalf("step %d: engines diverged by %v", i, d)
		}
	}
}
