package core

import (
	"fmt"

	"dismastd/internal/cluster"
	"dismastd/internal/dtd"
	"dismastd/internal/tensor"
)

// Session runs successive distributed steps on one persistent
// in-process cluster, so a long-lived stream — the event-granularity
// ingestion path most of all — does not rebuild transport buffer pools
// and observability state per micro-batch. Each Step is one collective
// run of the same StepJob body the one-shot Step uses, which makes the
// end of every micro-batch a step fence exactly like the bulk path's:
// the elastic driver and the cluster observability plane key off that
// fence and keep working unchanged. The optional Fence hook runs on
// every rank after the step body and before the run completes — the
// point cmd/worker calls Plane.Fence — receiving the session's step
// index and the job whose PlannedLoads the plane's imbalance detector
// consumes.
//
// Factors are bitwise identical to calling Step once per snapshot:
// every run constructs fresh per-rank mailboxes and workers, so no
// ordering-relevant state leaks between steps.
type Session struct {
	cl      *cluster.Local
	workers int
	steps   int

	// Fence, when non-nil, runs on every rank at each step's fence.
	Fence func(w *cluster.Worker, step int, job *StepJob) error
}

// NewSession returns a session over a fresh in-process cluster of the
// given size.
func NewSession(workers int) *Session {
	return &Session{cl: cluster.NewLocal(workers), workers: workers}
}

// Workers returns the cluster size every step runs on.
func (s *Session) Workers() int { return s.workers }

// Steps returns the number of completed steps.
func (s *Session) Steps() int { return s.steps }

// Step advances the decomposition from prev to the new snapshot on the
// session's cluster. o.Workers must match the session (zero adopts
// it). prev is not modified.
func (s *Session) Step(prev *dtd.State, snapshot *tensor.Tensor, o Options) (*dtd.State, *StepStats, error) {
	if o.Workers == 0 {
		o.Workers = s.workers
	}
	if o.Workers != s.workers {
		return nil, nil, fmt.Errorf("core: session of %d workers asked to step with %d", s.workers, o.Workers)
	}
	job, err := NewStepJob(prev, snapshot, o)
	if err != nil {
		return nil, nil, err
	}
	step := s.steps
	runStats, err := s.cl.Run(func(w *cluster.Worker) error {
		if err := job.RunWorker(w); err != nil {
			return err
		}
		if s.Fence != nil {
			return s.Fence(w, step, job)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	st, stats, err := job.Result()
	if err != nil {
		return nil, nil, err
	}
	stats.Cluster = runStats
	stats.Phases = PhasesOf(runStats)
	job.OverrideAlgoMetrics(runStats)
	s.steps++
	return st, stats, nil
}
