package core

// Chaos test for detector-driven live rebalancing: a stream whose
// members have (scripted) heterogeneous compute speed must trip the
// observability plane's imbalance detector, re-partition exactly once
// at a fence — an epoch bump with no membership change and zero
// migration traffic — and come out both better balanced and at the
// same fit as an uninterrupted run.

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"

	"dismastd/internal/dtd"
	"dismastd/internal/obs"
	obscluster "dismastd/internal/obs/cluster"
	"dismastd/internal/tensor"
)

// rebalanceSeq builds a longer stream than elasticSeq — seven steps —
// so the detector has fences to fire on and then demonstrably settle
// after the re-partition.
func rebalanceSeq(t *testing.T, rank int) (*dtd.State, []*tensor.Tensor) {
	t.Helper()
	full := sparseRandom([]int{26, 24, 22}, 3000, 71)
	shapes := make([][]int, 8)
	for i := range shapes {
		shapes[i] = []int{19 + i, 17 + i, 15 + i}
	}
	seq, err := tensor.NewSequence(full, shapes)
	if err != nil {
		t.Fatal(err)
	}
	prev := initState(t, seq.Snapshot(0), rank, 73)
	snaps := make([]*tensor.Tensor, 0, seq.Len()-1)
	for i := 1; i < seq.Len(); i++ {
		snaps = append(snaps, seq.Snapshot(i))
	}
	return prev, snaps
}

// TestRebalanceOnImbalanceChaos: three members, one scripted to burn
// 3x the compute nanoseconds per unit of assigned load. The detector's
// CV must cross the threshold, exactly one rebalance must fire (the
// long cool-down blocks refires), the post-rebalance imbalance must
// fall back under the threshold, and the final fit must track a
// uniform-speed reference run within 1e-6 relative — re-partitioning
// only regroups floating-point reductions, it never changes the maths.
func TestRebalanceOnImbalanceChaos(t *testing.T) {
	const r = 3
	const threshold = 0.25
	prev, snaps := rebalanceSeq(t, r)
	o := elasticBase(3, 3)
	o.MaxIters = 10
	_, refLoss := referenceRun(t, prev, snaps, 3, o.Options)

	// Ranks 0 and 1 burn 12µs per load unit, rank 2 burns 36µs: the
	// padding dwarfs the real per-sweep kernels, so the duration CV the
	// detector sees is ≈ the CV of {1,1,3} ≈ 0.57, comfortably over the
	// threshold, and the derived cost weights are ≈ {0.6, 0.6, 1.8}.
	o.SlowRanks = map[int]float64{0: 12e3, 1: 12e3, 2: 36e3}
	o.Plane = &obscluster.Config{
		Detector:    obscluster.DetectorConfig{Threshold: threshold, Cooldown: 100},
		TimelineCap: 1 << 16, // keep every pre-transition span for the epoch checks
	}
	o.RebalanceOnImbalance = true
	var mu sync.Mutex
	planes := map[int]*obscluster.Plane{}
	o.PlaneReady = func(world int, p *obscluster.Plane) {
		mu.Lock()
		planes[world] = p
		mu.Unlock()
	}

	job, err := NewElasticJob(prev, snaps, o)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := runElastic(t, job, 3)
	if err != nil {
		t.Fatal(err)
	}
	final, gotLoss, transitions, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}
	if final == nil || len(final.Factors) != 3 {
		t.Fatalf("final state = %+v", final)
	}

	// Exactly one transition, and it is the detector's: an epoch bump
	// with the same members, a CV over the threshold, and zero bytes —
	// at fences every member already holds the synced state.
	if len(transitions) != 1 {
		t.Fatalf("recorded %d transitions, want exactly 1 rebalance: %+v", len(transitions), transitions)
	}
	tr := transitions[0]
	if !tr.Rebalance {
		t.Fatalf("transition is not a rebalance: %+v", tr)
	}
	if tr.CV <= threshold {
		t.Fatalf("rebalance fired at CV %v, threshold %v", tr.CV, threshold)
	}
	if tr.Epoch != 1 || len(tr.Dead)+len(tr.Join)+len(tr.Leave) != 0 {
		t.Fatalf("rebalance transition = %+v, want epoch 1 with unchanged members", tr)
	}
	if tr.BytesSent != 0 || tr.MovedRows != 0 || tr.AbsorbedRows != 0 {
		t.Fatalf("rebalance cost %d bytes, %d moved, %d absorbed rows; want all zero", tr.BytesSent, tr.MovedRows, tr.AbsorbedRows)
	}

	// Every member counted exactly one rebalance epoch.
	for world := 0; world < 3; world++ {
		c := stats.Ranks[world].Obs.Metrics.Counters
		if c["elastic.rebalances"] != 1 {
			t.Fatalf("rank %d counted %d rebalances, want 1", world, c["elastic.rebalances"])
		}
		if c["elastic.epochs"] != 1 {
			t.Fatalf("rank %d counted %d epochs, want 1", world, c["elastic.epochs"])
		}
	}

	// The coordinator's detector fired once — the cool-down of 100
	// fences blocks any refire — and by the final fence the smoothed CV
	// has dropped back under the threshold: the weighted plan fixed the
	// imbalance it was derived from.
	det := planes[0].Snapshot().Detector
	if det.Fired != 1 {
		t.Fatalf("detector fired %d times, want exactly 1", det.Fired)
	}
	if det.Suggested < det.Fired {
		t.Fatalf("detector suggested %d < fired %d", det.Suggested, det.Fired)
	}
	if det.CV >= threshold {
		t.Fatalf("post-rebalance CV %v did not drop under the threshold %v (fired at %v)", det.CV, threshold, tr.CV)
	}
	if det.CV >= tr.CV {
		t.Fatalf("imbalance did not improve: CV %v at fire, %v at the end", tr.CV, det.CV)
	}

	// Fit: within 1e-6 relative of the uniform-speed reference.
	if d := math.Abs(gotLoss-refLoss) / refLoss; d > 1e-6 {
		t.Fatalf("final loss %v diverges from reference %v by %v relative", gotLoss, refLoss, d)
	}

	// Epoch stamping across the transition: the merged timeline must
	// hold spans from both epochs, and the scripted handicap spans —
	// recorded every step — must appear re-stamped with the new epoch
	// after the rebalance.
	var buf bytes.Buffer
	if err := planes[0].WriteTimelineJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	perEpoch := map[int64]int{}
	chaosEpochs := map[int64]int{}
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var ev obs.SpanEvent
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		perEpoch[ev.Epoch]++
		if ev.Name == "chaos/mttkrp" {
			chaosEpochs[ev.Epoch]++
		}
	}
	if perEpoch[0] == 0 || perEpoch[1] == 0 {
		t.Fatalf("timeline spans per epoch = %v, want both pre- and post-transition epochs", perEpoch)
	}
	if chaosEpochs[1] == 0 {
		t.Fatalf("no post-rebalance handicap spans stamped with epoch 1: %v", chaosEpochs)
	}
}

// TestRebalanceRequiresPlane: arming the detector without the plane
// that hosts it is a configuration error, not a silent no-op.
func TestRebalanceRequiresPlane(t *testing.T) {
	prev, snaps := rebalanceSeq(t, 3)
	o := elasticBase(3, 3)
	o.RebalanceOnImbalance = true
	if _, err := NewElasticJob(prev, snaps, o); err == nil {
		t.Fatal("NewElasticJob accepted RebalanceOnImbalance without a Plane")
	}
}

// TestElasticPlaneKeepsMathsBitwise: turning the plane on (detector
// disarmed) must not change a single bit of the decomposition — the
// fence is pure observation.
func TestElasticPlaneKeepsMathsBitwise(t *testing.T) {
	prev, snaps := elasticSeq(t, 3)
	o := elasticBase(3, 3)
	_, refLoss := referenceRun(t, prev, snaps, 3, o.Options)

	o.Plane = &obscluster.Config{}
	job, err := NewElasticJob(prev, snaps, o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runElastic(t, job, 3); err != nil {
		t.Fatal(err)
	}
	_, gotLoss, transitions, err := job.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(transitions) != 0 {
		t.Fatalf("disarmed plane recorded %d transitions", len(transitions))
	}
	if gotLoss != refLoss {
		t.Fatalf("plane-enabled loss %v, reference %v — observation changed the maths", gotLoss, refLoss)
	}
}
