package core

// Chaos coverage for the in-process transport: deterministic FaultPlan
// schedules injected into a real DisMASTD step. A mid-sweep send
// failure must produce a fast, rank-attributed error, unblock every
// rank through the poisoned mailboxes, and leave no goroutines behind.

import (
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"dismastd/internal/cluster"
	"dismastd/internal/partition"
)

// stableGoroutines samples the goroutine count until it stops above
// target or the budget runs out, absorbing exiting-goroutine lag.
func stableGoroutines(target int) int {
	n := runtime.NumGoroutine()
	for i := 0; i < 100 && n > target; i++ {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

func TestChaosLocalSendFaultMidSweep(t *testing.T) {
	full := sparseRandom([]int{20, 18, 15}, 600, 71)
	prev := initState(t, full.Prefix([]int{16, 14, 12}), 3, 73)
	before := runtime.NumGoroutine()

	boom := errors.New("injected mid-sweep link failure")
	// Rank 1's 30th send lands well inside the ALS sweeps (the initial
	// Gram replication alone takes a handful per pair).
	plan := cluster.NewFaultPlan().
		Add(cluster.FaultRule{From: 1, To: cluster.AnyRank, FirstSeq: 30, LastSeq: -1, Op: cluster.FaultError, Err: boom})

	job, err := NewStepJob(prev, full, Options{Rank: 3, MaxIters: 5, Tol: 0, Workers: 3, Method: partition.MTPMethod, Seed: 75})
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.NewLocal(job.Workers())
	cl.SetRecvTimeout(60 * time.Second)
	cl.SetFaultPlan(plan)

	start := time.Now()
	_, runErr := cl.Run(job.RunWorker)
	elapsed := time.Since(start)

	// Run returning at all proves the poisoned mailboxes released every
	// blocked rank; fail-fast means far sooner than the receive timeout.
	if runErr == nil {
		t.Fatal("injected fault produced no error")
	}
	if !errors.Is(runErr, boom) {
		t.Fatalf("error = %v, want injected failure", runErr)
	}
	if !strings.Contains(runErr.Error(), "rank 1") {
		t.Fatalf("error %q not attributed to rank 1", runErr)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("fault took %v to surface", elapsed)
	}
	if plan.FiredOp(cluster.FaultError) == 0 {
		t.Fatal("fault plan never fired")
	}
	// The transport's injection counters mirror the plan's accounting.
	m := cl.Obs().Reg.Snapshot().Counters
	if m["transport.faults.injected"] != int64(plan.Fired()) {
		t.Fatalf("faults.injected = %d, plan fired %d", m["transport.faults.injected"], plan.Fired())
	}
	if m["transport.faults.error"] != int64(plan.FiredOp(cluster.FaultError)) {
		t.Fatalf("faults.error = %d, plan fired %d", m["transport.faults.error"], plan.FiredOp(cluster.FaultError))
	}
	if _, _, err := job.Result(); err == nil {
		t.Fatal("failed job still produced a result")
	}
	if after := stableGoroutines(before); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

func TestChaosLocalDropPoisonsViaTimeout(t *testing.T) {
	// A silently dropped Gram contribution stalls the reduction; the
	// receive timeout must convert the stall into a run failure that
	// unblocks all ranks, again without leaking goroutines.
	full := sparseRandom([]int{15, 12, 10}, 300, 91)
	prev := initState(t, full.Prefix([]int{12, 10, 8}), 3, 93)
	before := runtime.NumGoroutine()

	plan := cluster.NewFaultPlan().
		Add(cluster.FaultRule{From: 2, To: 0, TagPrefix: "reduce", FirstSeq: 0, LastSeq: -1, Op: cluster.FaultDrop})
	job, err := NewStepJob(prev, full, Options{Rank: 3, MaxIters: 3, Tol: 0, Workers: 3, Method: partition.MTPMethod, Seed: 95})
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.NewLocal(job.Workers())
	cl.SetRecvTimeout(250 * time.Millisecond)
	cl.SetFaultPlan(plan)
	_, runErr := cl.Run(job.RunWorker)
	if runErr == nil || !errors.Is(runErr, cluster.ErrTimeout) {
		t.Fatalf("error = %v, want receive timeout from dropped reduction", runErr)
	}
	if plan.FiredOp(cluster.FaultDrop) == 0 {
		t.Fatal("drop rule never fired")
	}
	if m := cl.Obs().Reg.Snapshot().Counters; m["transport.faults.drop"] != int64(plan.FiredOp(cluster.FaultDrop)) {
		t.Fatalf("faults.drop = %d, plan fired %d", m["transport.faults.drop"], plan.FiredOp(cluster.FaultDrop))
	}
	if after := stableGoroutines(before); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}
