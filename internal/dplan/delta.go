// Plan deltas and factor-row migration for elastic membership: when a
// view change removes or adds workers mid-step, the surviving ranks
// derive a minimally different plan (partition.Rebalance per mode),
// diff the row ownership against the old plan, and ship exactly the
// moved rows over the pooled transport path. Rows whose old owner died
// cannot be shipped — their freshest surviving copy is the local
// replica every rank already holds (at worst one aborted sweep stale,
// the same staleness a checkpoint restore would accept) — so the new
// owner absorbs its replica values at zero wire cost: the degraded-
// mode policy that lets survivors finish the in-flight sweep instead
// of aborting the decomposition.

package dplan

import (
	"fmt"

	"dismastd/internal/cluster"
	"dismastd/internal/mat"
	"dismastd/internal/partition"
)

// RebuildRebalanced derives the next view's plan from the current one
// with minimal slice movement: each mode's partitioning is rebalanced
// (surviving workers keep their slices, orphaned slices spread LPT-
// style), then the downstream structures are re-assembled. Workers and
// partitions map 1:1 in elastic operation, so old.Parts must equal
// old.Workers. Deterministic: every survivor computes an identical
// plan without communicating.
func RebuildRebalanced(old *Plan, oldView, newView cluster.View) (*Plan, error) {
	if old.Parts != old.Workers {
		return nil, fmt.Errorf("dplan: elastic rebalance needs parts == workers, have %d != %d", old.Parts, old.Workers)
	}
	if old.Workers != oldView.Size() {
		return nil, fmt.Errorf("dplan: plan for %d workers under view of %d", old.Workers, oldView.Size())
	}
	// remap[oldRank] = newRank for survivors, −1 for departed workers —
	// computed through world ranks, the identity stable across views.
	remap := make([]int32, oldView.Size())
	for o := range remap {
		remap[o] = int32(newView.RankOf(oldView.WorldOf(o)))
	}
	p := &Plan{
		Tensor:  old.Tensor,
		Dims:    append([]int(nil), old.Dims...),
		Workers: newView.Size(),
		Parts:   newView.Size(),
		Method:  old.Method,
	}
	p.ModePlans = make([]*partition.ModePlan, len(old.ModePlans))
	for m, mp := range old.ModePlans {
		np := partition.Rebalance(old.Tensor.SliceNNZ(m), mp, remap, newView.Size())
		np.Mode = m
		p.ModePlans[m] = np
	}
	p.assemble()
	return p, nil
}

// Delta is the row-movement diff between two plans across a view
// change, expressed in the NEW view's ranks (migration runs on the new
// epoch's view worker).
type Delta struct {
	// Moved[mode] lists the row flows whose old owner survived: the old
	// owner sends its current (warm) row values to the new owner.
	Moved [][]Flow
	// Absorbed[mode][newRank] lists rows whose old owner died: the new
	// owner adopts its local replica (latest known values), zero bytes.
	Absorbed [][][]int32
}

// Flow is one (sender, receiver) row batch of the migration.
type Flow struct {
	From, To int // new-view ranks
	Rows     []int32
}

// MovedRows returns the total rows shipped per mode summed over flows.
func (d *Delta) MovedRows() int {
	total := 0
	for _, flows := range d.Moved {
		for _, f := range flows {
			total += len(f.Rows)
		}
	}
	return total
}

// AbsorbedRows returns the total rows adopted from dead ranks.
func (d *Delta) AbsorbedRows() int {
	total := 0
	for _, byRank := range d.Absorbed {
		for _, rows := range byRank {
			total += len(rows)
		}
	}
	return total
}

// ComputeDelta diffs row ownership between oldPlan (under oldView) and
// newPlan (under newView). A row flows when both its old and new owner
// survive in the new view but differ; it is absorbed when its old
// owner is gone. Deterministic given identical inputs.
func ComputeDelta(oldPlan *Plan, oldView cluster.View, newPlan *Plan, newView cluster.View) *Delta {
	n := len(newPlan.Dims)
	d := &Delta{
		Moved:    make([][]Flow, n),
		Absorbed: make([][][]int32, n),
	}
	for m := 0; m < n; m++ {
		d.Absorbed[m] = make([][]int32, newPlan.Workers)
		// flows keyed (from, to); iteration order kept deterministic by
		// scanning rows in ascending order and appending first-seen
		// pairs to a list.
		type pair struct{ from, to int }
		idx := map[pair]int{}
		var flows []Flow
		for row := 0; row < oldPlan.Dims[m]; row++ {
			oldWorld := oldView.WorldOf(int(oldPlan.Owner[m][row]))
			newRank := int(newPlan.Owner[m][row])
			newWorld := newView.WorldOf(newRank)
			if oldWorld == newWorld {
				continue // unmoved
			}
			oldRank := newView.RankOf(oldWorld)
			if oldRank < 0 {
				d.Absorbed[m][newRank] = append(d.Absorbed[m][newRank], int32(row))
				continue
			}
			k := pair{oldRank, newRank}
			i, ok := idx[k]
			if !ok {
				i = len(flows)
				idx[k] = i
				flows = append(flows, Flow{From: oldRank, To: newRank})
			}
			flows[i].Rows = append(flows[i].Rows, int32(row))
		}
		d.Moved[m] = flows
	}
	return d
}

// Migrate ships the moved factor rows over the pooled transport on the
// new epoch's view worker: for each mode, surviving old owners pack
// their warm row values into pooled buffers and push them to the new
// owners under the epoch-fenced "mig/<mode>" stream tag. Absorbed rows
// cost nothing — the new owner's replica already holds their freshest
// surviving values. All members of the new view must call it in
// lockstep after a view change; factors are the full local replicas.
func Migrate(vw *cluster.Worker, d *Delta, factors []*mat.Dense) error {
	me := vw.Rank()
	migrated := vw.Obs().Counter("elastic.migrate.rows")
	for m, flows := range d.Moved {
		tag := vw.StreamTagIndexed("mig", m)
		r := factors[m].Cols
		for _, f := range flows {
			if f.From != me {
				continue
			}
			buf := vw.GetBuf(8 * len(f.Rows) * r)
			off := 0
			for _, row := range f.Rows {
				cluster.PutFloat64s(buf[off:off+8*r], factors[m].Row(int(row)))
				off += 8 * r
			}
			migrated.Add(int64(len(f.Rows)))
			if err := vw.SendPooled(f.To, tag, buf); err != nil {
				return err
			}
		}
		for _, f := range flows {
			if f.To != me {
				continue
			}
			payload, err := vw.Recv(f.From, tag)
			if err != nil {
				return err
			}
			if len(payload) != 8*len(f.Rows)*r {
				return fmt.Errorf("dplan: migration from %d mode %d: %d bytes for %d rows", f.From, m, len(payload), len(f.Rows))
			}
			off := 0
			for _, row := range f.Rows {
				cluster.CopyFloat64s(factors[m].Row(int(row)), payload[off:off+8*r])
				off += 8 * r
			}
			vw.PutBuf(payload)
		}
	}
	return nil
}
