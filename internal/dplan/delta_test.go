package dplan

import (
	"fmt"
	"testing"

	"dismastd/internal/cluster"
	"dismastd/internal/mat"
	"dismastd/internal/partition"
)

// TestRebuildShrinkAbsorbsDeadRows: when a rank dies, survivors keep
// every slice they had (zero moved rows between survivors) and the
// dead rank's rows are absorbed locally, never shipped.
func TestRebuildShrinkAbsorbsDeadRows(t *testing.T) {
	x := randomTensor([]int{24, 18, 14}, 600, 3)
	old := Build(x, 3, 3, partition.MTPMethod)
	oldView := cluster.InitialView(3)
	newView := cluster.ViewChange{Dead: []int{1}}.Apply(oldView)
	next, err := RebuildRebalanced(old, oldView, newView)
	if err != nil {
		t.Fatal(err)
	}
	if next.Workers != 2 || next.Parts != 2 {
		t.Fatalf("rebuilt plan for %d workers / %d parts", next.Workers, next.Parts)
	}
	d := ComputeDelta(old, oldView, next, newView)
	if got := d.MovedRows(); got != 0 {
		t.Fatalf("shrink moved %d rows between survivors, want 0", got)
	}
	// Every row the dead rank owned — and only those — is absorbed by
	// its new owner.
	for m := range next.Dims {
		absorbed := map[int32]bool{}
		for nr, rows := range d.Absorbed[m] {
			for _, row := range rows {
				if next.Owner[m][row] != int32(nr) {
					t.Fatalf("mode %d row %d absorbed by %d, owner %d", m, row, nr, next.Owner[m][row])
				}
				absorbed[row] = true
			}
		}
		for row := 0; row < old.Dims[m]; row++ {
			wasDead := old.Owner[m][row] == 1
			if wasDead != absorbed[int32(row)] {
				t.Fatalf("mode %d row %d: dead-owned %v, absorbed %v", m, row, wasDead, absorbed[int32(row)])
			}
		}
	}
	// The rebuilt plan keeps the full-coverage invariants: every entry
	// assigned exactly once per mode.
	for m := 0; m < x.Order(); m++ {
		total := 0
		for w := 0; w < next.Workers; w++ {
			total += len(next.EntryLists[w][m])
		}
		if total != x.NNZ() {
			t.Fatalf("mode %d: %d of %d entries assigned", m, total, x.NNZ())
		}
	}
}

// TestRebuildGrowMovesOnlyToJoiner: admitting a fresh rank moves rows
// exclusively from survivors to the joiner, and nothing is absorbed.
func TestRebuildGrowMovesOnlyToJoiner(t *testing.T) {
	x := randomTensor([]int{30, 22, 16}, 900, 5)
	old := Build(x, 2, 2, partition.MTPMethod)
	oldView := cluster.InitialView(2)
	newView := cluster.ViewChange{Join: []int{2}}.Apply(oldView)
	next, err := RebuildRebalanced(old, oldView, newView)
	if err != nil {
		t.Fatal(err)
	}
	d := ComputeDelta(old, oldView, next, newView)
	if got := d.AbsorbedRows(); got != 0 {
		t.Fatalf("grow absorbed %d rows, want 0", got)
	}
	joiner := newView.RankOf(2)
	moved := 0
	for m, flows := range d.Moved {
		for _, f := range flows {
			if f.To != joiner {
				t.Fatalf("mode %d: flow %d -> %d not feeding the joiner", m, f.From, f.To)
			}
			moved += len(f.Rows)
		}
	}
	if moved == 0 {
		t.Fatal("joiner received no rows")
	}
	total := 0
	for _, dim := range old.Dims {
		total += dim
	}
	if moved > total/2 {
		t.Fatalf("moved %d of %d rows to feed one joiner", moved, total)
	}
}

// TestMigrateDeliversWarmRows runs the migration over the in-process
// transport on a grow view change: each old owner stamps its rows with
// recognisable values, Migrate ships exactly the moved rows, and the
// joiner ends up with the senders' warm values while the metrics
// account every migrated row on the sending side.
func TestMigrateDeliversWarmRows(t *testing.T) {
	x := randomTensor([]int{20, 16, 12}, 500, 7)
	const r = 4
	old := Build(x, 2, 2, partition.MTPMethod)
	oldView := cluster.InitialView(2)
	newView := cluster.ViewChange{Join: []int{2}}.Apply(oldView)
	next, err := RebuildRebalanced(old, oldView, newView)
	if err != nil {
		t.Fatal(err)
	}
	d := ComputeDelta(old, oldView, next, newView)
	if d.MovedRows() == 0 {
		t.Fatal("degenerate case: nothing to migrate")
	}
	truth := func(m, row, col int) float64 {
		return float64(m+1)*1000 + float64(row)*10 + float64(col)
	}
	c := cluster.NewLocal(newView.Size())
	stats, err := c.Run(func(w *cluster.Worker) error {
		// World ranks equal view ranks here, so a plain local worker
		// stands in for the view worker.
		factors := make([]*mat.Dense, x.Order())
		for m := range factors {
			factors[m] = mat.New(x.Dims[m], r)
			factors[m].Fill(-1)
			// Old owners hold the warm values; the joiner holds none.
			if w.Rank() < old.Workers {
				for _, s := range old.OwnedSlices[m][w.Rank()] {
					row := factors[m].Row(int(s))
					for col := range row {
						row[col] = truth(m, int(s), col)
					}
				}
			}
		}
		if err := Migrate(w, d, factors); err != nil {
			return err
		}
		for m, flows := range d.Moved {
			for _, f := range flows {
				if f.To != w.Rank() {
					continue
				}
				for _, row := range f.Rows {
					vals := factors[m].Row(int(row))
					for col, v := range vals {
						if want := truth(m, int(row), col); v != want {
							return fmt.Errorf("rank %d mode %d row %d col %d = %v, want %v", w.Rank(), m, row, col, v, want)
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Exactly the moved rows crossed the wire: each flow is one message
	// of 8·r·rows payload plus the tag/envelope accounting overhead.
	wantBytes := int64(0)
	for m, flows := range d.Moved {
		for _, f := range flows {
			wantBytes += int64(8*r*len(f.Rows)) + int64(len(fmt.Sprintf("mig/%d", m))) + 8
		}
	}
	if got := stats.TotalBytes(); got != wantBytes {
		t.Fatalf("migration moved %d bytes, want %d", got, wantBytes)
	}
	moved := int64(0)
	for _, rs := range stats.Ranks {
		moved += rs.Obs.Metrics.Counters["elastic.migrate.rows"]
	}
	if moved != int64(d.MovedRows()) {
		t.Fatalf("metrics counted %d migrated rows, delta says %d", moved, d.MovedRows())
	}
}
