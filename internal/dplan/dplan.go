// Package dplan builds the data-distribution plan shared by the
// distributed decomposition algorithms (DisMASTD in internal/core and
// the DMS-MG baseline in internal/dmsmg):
//
//   - per-mode slice partitioning via GTP or MTP (Section IV-A2),
//   - assignment of partitions to workers,
//   - per-(worker, mode) entry lists — the row-wise tensor distribution
//     of Fig. 4, one 1-D decomposition per mode,
//   - factor-row ownership and the static row-subscription lists that
//     drive the post-update row exchange (Section IV-A3: "we assign all
//     the related factor matrices to the corresponding tensor
//     partitions in a row-wise pattern").
//
// The plan is computed once per snapshot step: the sparsity pattern is
// fixed across the ALS sweeps, so subscriptions never change within a
// step.
package dplan

import (
	"fmt"
	"sort"

	"dismastd/internal/cluster"
	"dismastd/internal/mat"
	"dismastd/internal/obs"
	"dismastd/internal/partition"
	"dismastd/internal/tensor"
)

// Plan is the full data distribution for one snapshot step.
type Plan struct {
	Tensor  *tensor.Tensor // the entries driving MTTKRP (complement or full snapshot)
	Dims    []int
	Workers int
	Parts   int // partitions per mode (≥ Workers means finer grain)
	Method  partition.Method

	// Weights holds the per-worker cost weights the plan was built with
	// (BuildWeighted), nil for the unweighted heuristics. Informational:
	// assemble() never reads it.
	Weights []float64

	ModePlans []*partition.ModePlan // per-mode slice -> partition
	Owner     [][]int32             // [mode][slice] -> owning worker

	// EntryLists[w][mode] lists the tensor entry ids whose mode
	// coordinate falls in worker w's mode partitions.
	EntryLists [][][]int32

	// OwnedSlices[mode][w] lists every slice (including empty ones)
	// worker w owns in that mode — the factor rows it updates.
	OwnedSlices [][][]int32

	// Needs[mode][w] lists the mode-rows worker w must read during
	// MTTKRP of the *other* modes, sorted ascending. Owned rows are
	// excluded (they are always locally fresh).
	Needs [][][]int32

	// SendLists[mode][owner][sub] is Needs[mode][sub] restricted to the
	// rows owner holds: the rows owner pushes to sub after updating the
	// mode. nil when owner == sub or the intersection is empty.
	SendLists [][][][]int32
}

// Build computes a plan for distributing t's entries across workers
// with parts partitions per mode. parts > workers spreads several
// partitions per worker round-robin; parts < workers leaves the excess
// workers idle (the left side of the Fig. 6 U-curve, where parallelism
// is limited by the partition count).
func Build(t *tensor.Tensor, workers, parts int, method partition.Method) *Plan {
	return BuildWeighted(t, workers, parts, method, nil)
}

// BuildWeighted is Build with optional per-worker cost weights. Nil
// weights reproduce Build exactly. With len(weights) == workers the
// per-mode partitioning switches to partition.WeightedLPT, minimising
// the weighted makespan max_w weights[w]·load_w — the fence-time
// rebalance path uses this with the measured per-rank costs the
// imbalance detector broadcast, so a skewed stream re-partitions toward
// the ranks that are actually fast. When parts > workers each
// partition inherits the weight of the worker it lands on round-robin.
func BuildWeighted(t *tensor.Tensor, workers, parts int, method partition.Method, weights []float64) *Plan {
	if workers <= 0 {
		panic(fmt.Sprintf("dplan: %d workers", workers))
	}
	if parts <= 0 {
		parts = workers
	}
	if weights != nil && len(weights) != workers {
		panic(fmt.Sprintf("dplan: %d weights for %d workers", len(weights), workers))
	}
	n := t.Order()
	p := &Plan{
		Tensor:  t,
		Dims:    append([]int(nil), t.Dims...),
		Workers: workers,
		Parts:   parts,
		Method:  method,
	}
	var partWeights []float64
	if weights != nil {
		p.Weights = append([]float64(nil), weights...)
		partWeights = make([]float64, parts)
		for q := range partWeights {
			partWeights[q] = weights[q%workers] // round-robin owner's weight
		}
	}
	p.ModePlans = make([]*partition.ModePlan, n)
	for m := 0; m < n; m++ {
		var mp *partition.ModePlan
		if partWeights != nil {
			mp = partition.WeightedLPT(t.SliceNNZ(m), partWeights, parts)
		} else {
			mp = partition.Partition(t.SliceNNZ(m), parts, method)
		}
		mp.Mode = m
		p.ModePlans[m] = mp
	}
	p.assemble()
	return p
}

// RankLoads returns each worker's total planned nnz across all modes —
// the deterministic load signal every rank can feed the imbalance
// detector without any communication (the plan is identical everywhere).
func (p *Plan) RankLoads() []float64 {
	out := make([]float64, p.Workers)
	for _, mp := range p.ModePlans {
		for part, l := range mp.Loads {
			out[part%p.Workers] += float64(l)
		}
	}
	return out
}

// assemble derives everything downstream of the mode plans: ownership,
// entry lists, owned-slice lists, and the row subscriptions. Build and
// the elastic rebalanced rebuild (delta.go) share it.
func (p *Plan) assemble() {
	n := len(p.Dims)
	t := p.Tensor
	p.Owner = make([][]int32, n)
	for m := 0; m < n; m++ {
		owner := make([]int32, p.Dims[m])
		for i, part := range p.ModePlans[m].Assign {
			owner[i] = part % int32(p.Workers) // round-robin partitions onto workers
		}
		p.Owner[m] = owner
	}

	p.EntryLists = make([][][]int32, p.Workers)
	for w := range p.EntryLists {
		p.EntryLists[w] = make([][]int32, n)
	}
	for e := 0; e < t.NNZ(); e++ {
		base := e * n
		for m := 0; m < n; m++ {
			w := p.Owner[m][t.Coords[base+m]]
			p.EntryLists[w][m] = append(p.EntryLists[w][m], int32(e))
		}
	}

	p.OwnedSlices = make([][][]int32, n)
	for m := 0; m < n; m++ {
		p.OwnedSlices[m] = make([][]int32, p.Workers)
		for i, w := range p.Owner[m] {
			p.OwnedSlices[m][w] = append(p.OwnedSlices[m][w], int32(i))
		}
	}

	p.buildSubscriptions()
}

func (p *Plan) buildSubscriptions() {
	n := len(p.Dims)
	t := p.Tensor
	p.Needs = make([][][]int32, n)
	for m := 0; m < n; m++ {
		p.Needs[m] = make([][]int32, p.Workers)
	}
	// For each worker, union the mode-m coordinates appearing in its
	// entry lists of modes k ≠ m.
	for w := 0; w < p.Workers; w++ {
		needed := make([]map[int32]struct{}, n)
		for m := range needed {
			needed[m] = make(map[int32]struct{})
		}
		for k := 0; k < n; k++ {
			for _, e := range p.EntryLists[w][k] {
				base := int(e) * n
				for m := 0; m < n; m++ {
					if m == k {
						continue
					}
					needed[m][t.Coords[base+m]] = struct{}{}
				}
			}
		}
		for m := 0; m < n; m++ {
			rows := make([]int32, 0, len(needed[m]))
			for r := range needed[m] {
				if p.Owner[m][r] != int32(w) { // owned rows are locally fresh
					rows = append(rows, r)
				}
			}
			sort.Slice(rows, func(a, b int) bool { return rows[a] < rows[b] })
			p.Needs[m][w] = rows
		}
	}
	p.SendLists = make([][][][]int32, n)
	for m := 0; m < n; m++ {
		p.SendLists[m] = make([][][]int32, p.Workers)
		for o := 0; o < p.Workers; o++ {
			p.SendLists[m][o] = make([][]int32, p.Workers)
		}
		for s := 0; s < p.Workers; s++ {
			for _, r := range p.Needs[m][s] {
				o := p.Owner[m][r]
				p.SendLists[m][o][s] = append(p.SendLists[m][o][s], r)
			}
		}
	}
}

// Imbalance returns the per-mode partition load imbalance (coefficient
// of variation of partition nnz) — the Table IV statistic.
func (p *Plan) Imbalance() []float64 {
	out := make([]float64, len(p.ModePlans))
	for m, mp := range p.ModePlans {
		out[m] = mp.ImbalanceStdDev()
	}
	return out
}

// SetupBytes estimates the one-time data-distribution communication of
// Theorem 4: every non-zero entry shipped to its N mode partitions
// (coordinates + value) plus every factor row shipped to its owner.
func (p *Plan) SetupBytes(rank int) int64 {
	n := len(p.Dims)
	entryBytes := int64(p.Tensor.NNZ()) * int64(n) * int64(4*n+8)
	var rowBytes int64
	for _, d := range p.Dims {
		rowBytes += int64(d) * int64(8*rank)
	}
	return entryBytes + rowBytes
}

// Exchanger carries the per-worker reusable state of the row exchange:
// the per-mode stream tags, the pending-peer scratch list, and the
// pooled framed buffers rows are encoded into. One Exchanger per
// (worker, plan), used by that worker's goroutine only; a steady-state
// Exchange performs zero heap allocations on the in-process transport.
type Exchanger struct {
	w       *cluster.Worker
	p       *Plan
	pending []int
	sent    *obs.Counter
}

// NewExchanger binds a worker to a plan for repeated row exchanges.
func NewExchanger(w *cluster.Worker, p *Plan) *Exchanger {
	return &Exchanger{
		w:       w,
		p:       p,
		pending: make([]int, 0, w.Size()),
		sent:    w.Obs().Counter("exchange.rows"),
	}
}

// Exchange pushes the freshly updated owned rows of factor (which is
// the full mode-m matrix, locally replicated) to every subscriber and
// pulls the rows this worker subscribes to. All workers must call it in
// lockstep after updating mode m. When broadcast is true the full owned
// row set goes to every other worker regardless of need — the
// row-subscription ablation baseline.
//
// Rows are packed directly into pooled transport buffers, and incoming
// blocks are scattered in arrival order (RecvAny), which is safe
// bitwise: each peer's block covers a disjoint row set, so the landing
// order cannot change any value.
func (e *Exchanger) Exchange(mode int, factor *mat.Dense, broadcast bool) error {
	w, p := e.w, e.p
	me := w.Rank()
	tag := w.StreamTagIndexed("rows", mode)
	r := factor.Cols

	rowsFor := func(from, to int) []int32 {
		if broadcast {
			return p.OwnedSlices[mode][from]
		}
		return p.SendLists[mode][from][to]
	}

	// Send phase: unbounded mailboxes make sends non-blocking, so all
	// sends complete before any receive.
	for s := 0; s < w.Size(); s++ {
		rows := rowsFor(me, s)
		if s == me || len(rows) == 0 {
			continue
		}
		buf := w.GetBuf(8 * len(rows) * r)
		off := 0
		for _, row := range rows {
			cluster.PutFloat64s(buf[off:off+8*r], factor.Row(int(row)))
			off += 8 * r
		}
		e.sent.Add(int64(len(rows)))
		if err := w.SendPooled(s, tag, buf); err != nil {
			return err
		}
	}
	// Receive phase: scatter incoming rows into the local replica as
	// the blocks arrive, whatever the peer order.
	e.pending = e.pending[:0]
	for o := 0; o < w.Size(); o++ {
		if o != me && len(rowsFor(o, me)) > 0 {
			e.pending = append(e.pending, o)
		}
	}
	for len(e.pending) > 0 {
		i, payload, err := w.RecvAny(tag, e.pending)
		if err != nil {
			return err
		}
		o := e.pending[i]
		e.pending[i] = e.pending[len(e.pending)-1]
		e.pending = e.pending[:len(e.pending)-1]
		rows := rowsFor(o, me)
		if len(payload) != 8*len(rows)*r {
			return fmt.Errorf("dplan: row exchange from %d mode %d: %d bytes for %d rows", o, mode, len(payload), len(rows))
		}
		off := 0
		for _, row := range rows {
			cluster.CopyFloat64s(factor.Row(int(row)), payload[off:off+8*r])
			off += 8 * r
		}
		w.PutBuf(payload)
	}
	return nil
}

// ExchangeRows is the one-shot form of Exchanger.Exchange, for callers
// outside the steady-state sweep.
func ExchangeRows(w *cluster.Worker, p *Plan, mode int, factor *mat.Dense, broadcast bool) error {
	return NewExchanger(w, p).Exchange(mode, factor, broadcast)
}
