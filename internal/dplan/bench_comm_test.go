package dplan

import (
	"fmt"
	"testing"
	"time"

	"dismastd/internal/cluster"
	"dismastd/internal/mat"
	"dismastd/internal/partition"
)

// BenchmarkCommExchangeRows measures the subscription row exchange —
// the per-sweep point-to-point traffic between the collectives — on the
// Local transport, included in `make bench-comm`. With the pooled
// buffer path this is allocation-free at steady state; -benchmem shows
// it.
func BenchmarkCommExchangeRows(b *testing.B) {
	for _, workers := range []int{4, 8} {
		for _, r := range []int{8, 32} {
			b.Run(fmt.Sprintf("M=%d/R=%d", workers, r), func(b *testing.B) {
				x := randomTensor([]int{600, 500, 400}, 40000, 7)
				p := Build(x, workers, workers, partition.GTPMethod)
				factors := make([]*mat.Dense, x.Order())
				for m, d := range x.Dims {
					factors[m] = mat.New(d, r)
				}
				c := cluster.NewLocal(workers)
				c.SetRecvTimeout(time.Minute)
				b.ResetTimer()
				stats, err := c.Run(func(w *cluster.Worker) error {
					exch := NewExchanger(w, p)
					locals := make([]*mat.Dense, x.Order())
					for m, d := range x.Dims {
						locals[m] = mat.New(d, r)
					}
					for i := 0; i < b.N; i++ {
						for m := 0; m < x.Order(); m++ {
							if err := exch.Exchange(m, locals[m], false); err != nil {
								return err
							}
						}
					}
					return nil
				})
				b.StopTimer()
				if err != nil {
					b.Fatal(err)
				}
				var maxSent int64
				for _, rk := range stats.Ranks {
					if rk.BytesSent > maxSent {
						maxSent = rk.BytesSent
					}
				}
				b.ReportMetric(float64(maxSent)/float64(b.N), "maxrank-B/op")
			})
		}
	}
}
