package dplan

import (
	"fmt"
	"testing"
	"testing/quick"

	"dismastd/internal/cluster"
	"dismastd/internal/mat"
	"dismastd/internal/partition"
	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

func randomTensor(dims []int, nnz int, seed uint64) *tensor.Tensor {
	src := xrand.New(seed)
	b := tensor.NewBuilder(dims)
	idx := make([]int, len(dims))
	for e := 0; e < nnz; e++ {
		for m, d := range dims {
			idx[m] = src.Intn(d)
		}
		b.Append(idx, src.Float64()+0.1)
	}
	return b.Build()
}

func TestEntryListsPartitionEveryMode(t *testing.T) {
	x := randomTensor([]int{20, 15, 10}, 400, 1)
	for _, method := range []partition.Method{partition.GTPMethod, partition.MTPMethod} {
		p := Build(x, 4, 4, method)
		for m := 0; m < x.Order(); m++ {
			// Each entry appears exactly once across workers per mode.
			seen := make(map[int32]int)
			for w := 0; w < p.Workers; w++ {
				for _, e := range p.EntryLists[w][m] {
					seen[e]++
				}
			}
			if len(seen) != x.NNZ() {
				t.Fatalf("%v mode %d: %d of %d entries assigned", method, m, len(seen), x.NNZ())
			}
			for e, c := range seen {
				if c != 1 {
					t.Fatalf("%v mode %d: entry %d assigned %d times", method, m, e, c)
				}
			}
			// Entries sit with the owner of their mode-m slice.
			for w := 0; w < p.Workers; w++ {
				for _, e := range p.EntryLists[w][m] {
					slice := x.Coords[int(e)*x.Order()+m]
					if p.Owner[m][slice] != int32(w) {
						t.Fatalf("%v mode %d: entry %d on worker %d, owner %d", method, m, e, w, p.Owner[m][slice])
					}
				}
			}
		}
	}
}

func TestOwnedSlicesCoverEveryRow(t *testing.T) {
	x := randomTensor([]int{12, 9, 7}, 100, 2)
	p := Build(x, 3, 5, partition.MTPMethod)
	for m := 0; m < x.Order(); m++ {
		count := 0
		for w := 0; w < p.Workers; w++ {
			for _, s := range p.OwnedSlices[m][w] {
				if p.Owner[m][s] != int32(w) {
					t.Fatalf("slice %d listed under non-owner %d", s, w)
				}
				count++
			}
		}
		if count != x.Dims[m] {
			t.Fatalf("mode %d: %d of %d slices owned", m, count, x.Dims[m])
		}
	}
}

func TestNeedsCoverMTTKRPReads(t *testing.T) {
	x := randomTensor([]int{15, 12, 9}, 300, 3)
	p := Build(x, 4, 4, partition.GTPMethod)
	n := x.Order()
	for w := 0; w < p.Workers; w++ {
		available := make([]map[int32]bool, n)
		for m := 0; m < n; m++ {
			available[m] = make(map[int32]bool)
			for _, s := range p.OwnedSlices[m][w] {
				available[m][s] = true
			}
			for _, r := range p.Needs[m][w] {
				if available[m][r] {
					t.Fatalf("worker %d needs row %d of mode %d it already owns", w, r, m)
				}
				available[m][r] = true
			}
		}
		// Every factor row an MTTKRP of any mode reads must be available.
		for k := 0; k < n; k++ {
			for _, e := range p.EntryLists[w][k] {
				base := int(e) * n
				for m := 0; m < n; m++ {
					if m == k {
						continue
					}
					if !available[m][x.Coords[base+m]] {
						t.Fatalf("worker %d mode-%d MTTKRP reads unavailable row %d of mode %d", w, k, x.Coords[base+m], m)
					}
				}
			}
		}
	}
}

func TestSendListsMatchNeeds(t *testing.T) {
	x := randomTensor([]int{10, 10, 10}, 250, 4)
	p := Build(x, 3, 3, partition.MTPMethod)
	for m := 0; m < x.Order(); m++ {
		for s := 0; s < p.Workers; s++ {
			// Union of what every owner sends to s == Needs[m][s].
			got := make(map[int32]bool)
			for o := 0; o < p.Workers; o++ {
				for _, r := range p.SendLists[m][o][s] {
					if p.Owner[m][r] != int32(o) {
						t.Fatalf("owner %d sends row %d it does not own", o, r)
					}
					if got[r] {
						t.Fatalf("row %d sent to %d twice", r, s)
					}
					got[r] = true
				}
			}
			if len(got) != len(p.Needs[m][s]) {
				t.Fatalf("mode %d worker %d: send lists cover %d rows, needs %d", m, s, len(got), len(p.Needs[m][s]))
			}
			for _, r := range p.Needs[m][s] {
				if !got[r] {
					t.Fatalf("mode %d worker %d: needed row %d never sent", m, s, r)
				}
			}
		}
	}
}

func TestFewerPartsThanWorkersLeavesIdleWorkers(t *testing.T) {
	x := randomTensor([]int{10, 10, 10}, 100, 5)
	p := Build(x, 6, 2, partition.GTPMethod)
	if p.Parts != 2 {
		t.Fatalf("parts = %d, want 2", p.Parts)
	}
	// Only workers 0 and 1 can own anything.
	for m := range p.Owner {
		for _, o := range p.Owner[m] {
			if o > 1 {
				t.Fatalf("worker %d owns a slice with only 2 partitions", o)
			}
		}
	}
	if len(p.OwnedSlices[0][5]) != 0 {
		t.Fatal("worker 5 should be idle")
	}
	// Defaulted parts.
	if q := Build(x, 3, 0, partition.GTPMethod); q.Parts != 3 {
		t.Fatalf("parts = %d, want defaulted to 3", q.Parts)
	}
}

func TestFinerPartitionsRoundRobin(t *testing.T) {
	x := randomTensor([]int{40, 40, 40}, 2000, 6)
	p := Build(x, 4, 12, partition.MTPMethod)
	// All owners must be valid workers even with 12 partitions.
	for m := range p.Owner {
		for _, o := range p.Owner[m] {
			if o < 0 || int(o) >= 4 {
				t.Fatalf("owner %d out of range", o)
			}
		}
	}
}

func TestImbalanceAndSetupBytes(t *testing.T) {
	x := randomTensor([]int{30, 30, 30}, 3000, 7)
	p := Build(x, 5, 5, partition.MTPMethod)
	imb := p.Imbalance()
	if len(imb) != 3 {
		t.Fatalf("imbalance per mode: %v", imb)
	}
	for m, v := range imb {
		if v < 0 || v > 1 {
			t.Fatalf("mode %d imbalance %v implausible for near-uniform data", m, v)
		}
	}
	if p.SetupBytes(10) <= 0 {
		t.Fatal("setup bytes must be positive")
	}
}

func TestExchangeRowsDelivers(t *testing.T) {
	x := randomTensor([]int{16, 12, 8}, 300, 8)
	const workers = 4
	const r = 3
	p := Build(x, workers, workers, partition.MTPMethod)
	for _, broadcast := range []bool{false, true} {
		c := cluster.NewLocal(workers)
		_, err := c.Run(func(w *cluster.Worker) error {
			// Each worker starts with a replica where only its owned
			// rows carry the true values (row i filled with i+1 scaled
			// by column), everything else is poisoned with -1.
			mode := 0
			f := mat.New(x.Dims[mode], r)
			f.Fill(-1)
			for _, s := range p.OwnedSlices[mode][w.Rank()] {
				row := f.Row(int(s))
				for c := range row {
					row[c] = float64(s+1) * float64(c+1)
				}
			}
			if err := ExchangeRows(w, p, mode, f, broadcast); err != nil {
				return err
			}
			// After the exchange every needed row must hold the truth.
			for _, need := range p.Needs[mode][w.Rank()] {
				row := f.Row(int(need))
				for c := range row {
					want := float64(need+1) * float64(c+1)
					if row[c] != want {
						return fmt.Errorf("worker %d row %d col %d = %v, want %v", w.Rank(), need, c, row[c], want)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("broadcast=%v: %v", broadcast, err)
		}
	}
}

func TestExchangeRowsBroadcastCostsMore(t *testing.T) {
	x := randomTensor([]int{60, 50, 40}, 800, 9)
	const workers = 4
	p := Build(x, workers, workers, partition.MTPMethod)
	traffic := func(broadcast bool) int64 {
		c := cluster.NewLocal(workers)
		stats, err := c.Run(func(w *cluster.Worker) error {
			f := mat.New(x.Dims[0], 5)
			return ExchangeRows(w, p, 0, f, broadcast)
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.TotalBytes()
	}
	sub := traffic(false)
	bc := traffic(true)
	if sub >= bc {
		t.Fatalf("subscription exchange (%d B) not cheaper than broadcast (%d B)", sub, bc)
	}
}

func TestBuildPanicsOnBadWorkers(t *testing.T) {
	x := randomTensor([]int{4, 4, 4}, 10, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Build(x, 0, 1, partition.GTPMethod)
}

func TestPlanInvariantsQuick(t *testing.T) {
	// Property test over random tensors and cluster shapes: every plan
	// must satisfy the structural invariants the distributed step
	// depends on, for both partitioners.
	if err := quick.Check(func(seed uint16, rawWorkers, rawParts uint8, rawMethod bool) bool {
		src := xrand.New(uint64(seed) + 1)
		dims := []int{2 + src.Intn(20), 2 + src.Intn(20), 2 + src.Intn(20)}
		nnz := 1 + src.Intn(300)
		x := randomTensor(dims, nnz, uint64(seed)+1000)
		if x.NNZ() == 0 {
			return true
		}
		workers := 1 + int(rawWorkers%6)
		parts := int(rawParts % 12) // 0 defaults to workers
		method := partition.GTPMethod
		if rawMethod {
			method = partition.MTPMethod
		}
		p := Build(x, workers, parts, method)

		// Invariant 1: every entry appears exactly once per mode.
		for m := 0; m < x.Order(); m++ {
			count := 0
			for w := 0; w < workers; w++ {
				count += len(p.EntryLists[w][m])
			}
			if count != x.NNZ() {
				return false
			}
		}
		// Invariant 2: every slice has exactly one owner, and owned
		// slices partition the index space.
		for m := 0; m < x.Order(); m++ {
			total := 0
			for w := 0; w < workers; w++ {
				total += len(p.OwnedSlices[m][w])
			}
			if total != x.Dims[m] {
				return false
			}
		}
		// Invariant 3: send lists only contain rows the receiver needs
		// and the sender owns.
		for m := 0; m < x.Order(); m++ {
			for o := 0; o < workers; o++ {
				for s := 0; s < workers; s++ {
					for _, r := range p.SendLists[m][o][s] {
						if p.Owner[m][r] != int32(o) {
							return false
						}
					}
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
