package dplan

import (
	"testing"

	"dismastd/internal/partition"
)

func TestBuildWeightedNilMatchesBuild(t *testing.T) {
	x := randomTensor([]int{20, 15, 10}, 400, 7)
	a := Build(x, 3, 3, partition.MTPMethod)
	b := BuildWeighted(x, 3, 3, partition.MTPMethod, nil)
	for m := range a.ModePlans {
		for i := range a.ModePlans[m].Assign {
			if a.ModePlans[m].Assign[i] != b.ModePlans[m].Assign[i] {
				t.Fatalf("mode %d slice %d: Build %d vs BuildWeighted(nil) %d",
					m, i, a.ModePlans[m].Assign[i], b.ModePlans[m].Assign[i])
			}
		}
	}
	if b.Weights != nil {
		t.Fatalf("nil-weight plan recorded weights %v", b.Weights)
	}
}

func TestBuildWeightedShiftsLoadOffSlowWorker(t *testing.T) {
	x := randomTensor([]int{30, 30, 30}, 2000, 3)
	uniform := BuildWeighted(x, 3, 3, partition.MTPMethod, []float64{1, 1, 1})
	skewed := BuildWeighted(x, 3, 3, partition.MTPMethod, []float64{1, 1, 4})
	lu, ls := uniform.RankLoads(), skewed.RankLoads()
	if ls[2] >= lu[2] {
		t.Fatalf("slow worker load %v with weights, %v without — want a smaller share", ls[2], lu[2])
	}
	// Every entry is still planned exactly once per mode.
	var total float64
	for _, l := range ls {
		total += l
	}
	if want := float64(x.NNZ() * x.Order()); total != want {
		t.Fatalf("weighted rank loads sum %v, want %v", total, want)
	}
	if len(skewed.Weights) != 3 || skewed.Weights[2] != 4 {
		t.Fatalf("plan weights = %v, want the build's", skewed.Weights)
	}
}

func TestRankLoadsRoundRobinParts(t *testing.T) {
	x := randomTensor([]int{24, 24}, 600, 11)
	p := Build(x, 2, 4, partition.MTPMethod) // 4 partitions on 2 workers
	loads := p.RankLoads()
	if len(loads) != 2 {
		t.Fatalf("%d rank loads, want 2", len(loads))
	}
	var want [2]float64
	for _, mp := range p.ModePlans {
		for part, l := range mp.Loads {
			want[part%2] += float64(l)
		}
	}
	if loads[0] != want[0] || loads[1] != want[1] {
		t.Fatalf("RankLoads = %v, want %v", loads, want)
	}
}
