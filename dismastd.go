// Package dismastd is a from-scratch Go implementation of DisMASTD
// (Yang, Gao, Shen, Zheng, Chen: "DisMASTD: An Efficient Distributed
// Multi-Aspect Streaming Tensor Decomposition", ICDE 2021): CP
// decomposition of sparse tensors that grow in every mode over time,
// computed incrementally — only the newly arrived data is touched — and
// distributed across workers with load-balanced tensor partitioning.
//
// The essential flow:
//
//	b := dismastd.NewBuilder([]int{users, products, timeSlots})
//	b.Append([]int{u, p, t}, rating)
//	snapshot := b.Build()
//
//	stream := dismastd.NewStream(dismastd.Options{Rank: 10, Workers: 8})
//	report, err := stream.Ingest(snapshot)     // first snapshot: full CP-ALS
//	...
//	report, err = stream.Ingest(nextSnapshot)  // later: incremental DisMASTD step
//	score := stream.Predict([]int{u, p, t})    // reconstruct any cell
//
// Snapshots must nest: each one contains the previous as a prefix
// sub-tensor (the multi-aspect streaming model). Set Workers to 1 for
// the centralized dynamic algorithm (DTD), or higher to run the
// distributed algorithm on an in-process worker cluster with GTP or MTP
// partitioning.
//
// The building blocks are exported too: static CP-ALS (Decompose), the
// partitioning heuristics (PartitionSlices), paper-shaped dataset
// generators (GenerateDataset), and tensor I/O. See DESIGN.md for the
// package map and EXPERIMENTS.md for the reproduced evaluation.
package dismastd

import (
	"fmt"
	"io"

	"dismastd/internal/cp"
	"dismastd/internal/dataset"
	"dismastd/internal/mat"
	"dismastd/internal/partition"
	"dismastd/internal/tensor"
)

// Tensor is a sparse tensor of arbitrary order in sorted coordinate
// format. Build one with NewBuilder, ReadTensorText, or ReadTensorBinary.
type Tensor = tensor.Tensor

// Builder accumulates coordinate/value entries and produces a canonical
// Tensor (sorted, duplicates summed, zeros dropped).
type Builder = tensor.Builder

// Sequence is a validated multi-aspect streaming tensor sequence: a
// full tensor plus per-step mode sizes where each snapshot nests inside
// the next.
type Sequence = tensor.Sequence

// Dense is a row-major dense matrix; factor matrices are Dense with one
// row per mode index and Rank columns.
type Dense = mat.Dense

// NewBuilder returns a Builder for a tensor with the given mode sizes.
func NewBuilder(dims []int) *Builder { return tensor.NewBuilder(dims) }

// NewSequence validates the step dims and wraps full as a streaming
// sequence.
func NewSequence(full *Tensor, steps [][]int) (*Sequence, error) {
	return tensor.NewSequence(full, steps)
}

// ReadTensorText parses the TSV tensor format ("dims\td1...\tdN" header
// followed by "i1\t...\tiN\tvalue" lines).
func ReadTensorText(r io.Reader) (*Tensor, error) { return tensor.ReadText(r) }

// ReadTensorBinary decodes the compact gob tensor format.
func ReadTensorBinary(r io.Reader) (*Tensor, error) { return tensor.ReadBinary(r) }

// WriteTensorText writes the TSV tensor format.
func WriteTensorText(w io.Writer, t *Tensor) error { return t.WriteText(w) }

// WriteTensorBinary writes the compact gob tensor format.
func WriteTensorBinary(w io.Writer, t *Tensor) error { return t.WriteBinary(w) }

// Partitioner selects a load-balancing heuristic for distributing
// tensor slices across workers (Section IV-A of the paper).
type Partitioner int

const (
	// GTP is Greedy Tensor Partitioning: contiguous slice runs filled
	// to a target size (Algorithm 2).
	GTP Partitioner = Partitioner(partition.GTPMethod)
	// MTP is Max-min Fit Tensor Partitioning: slices sorted by
	// decreasing weight, each placed on the lightest partition
	// (Algorithm 3). Preferred on skewed data.
	MTP Partitioner = Partitioner(partition.MTPMethod)
)

func (p Partitioner) String() string { return partition.Method(p).String() }

// PartitionSlices partitions a slice-weight histogram (for example
// Tensor.SliceNNZ of one mode) into p balanced groups and returns the
// per-slice partition assignment and per-partition loads.
func PartitionSlices(weights []int64, p int, method Partitioner) (assign []int32, loads []int64) {
	plan := partition.Partition(weights, p, partition.Method(method))
	return plan.Assign, plan.Loads
}

// Imbalance returns stddev(loads)/mean(loads), the balance statistic of
// the paper's Table IV (0 = perfectly balanced).
func Imbalance(loads []int64) float64 { return partition.ImbalanceStdDev(loads) }

// CPResult is a static CP decomposition.
type CPResult struct {
	Factors []*Dense // one I_n x Rank factor per mode
	Iters   int
	Loss    float64 // ‖X − [[A]]‖_F
	Fit     float64 // 1 − Loss/‖X‖_F
}

// Decompose runs static CP-ALS on x — the non-streaming baseline. Use
// NewStream for streaming data.
func Decompose(x *Tensor, rank int, maxIters int) (*CPResult, error) {
	res, err := cp.Decompose(x, cp.Options{Rank: rank, MaxIters: maxIters})
	if err != nil {
		return nil, err
	}
	return &CPResult{Factors: res.Factors, Iters: res.Iters, Loss: res.Loss, Fit: res.Fit}, nil
}

// Predict evaluates the Kruskal model at one coordinate:
// Σ_r ∏_k factors[k][idx[k], r]. This is the rating-prediction
// primitive of the paper's recommendation example.
func Predict(factors []*Dense, idx []int) float64 { return cp.Reconstruct(factors, idx) }

// DatasetKind selects one of the paper's four evaluation workloads.
type DatasetKind = dataset.Kind

// Dataset kinds, matching the paper's Table III.
const (
	DatasetClothing  = dataset.Clothing
	DatasetBook      = dataset.Book
	DatasetNetflix   = dataset.Netflix
	DatasetSynthetic = dataset.Synthetic
)

// GenerateDataset synthesises a paper-shaped evaluation tensor with
// approximately targetNNZ entries (see internal/dataset for how the
// published dataset statistics are preserved at reduced scale).
func GenerateDataset(kind DatasetKind, targetNNZ int, seed uint64) *Tensor {
	return dataset.Preset(kind, targetNNZ, seed).Generate()
}

// GrowthSchedule builds the paper's streaming protocol over t: snapshots
// at the given fractions of every mode (PaperGrowth gives 75%..100%).
func GrowthSchedule(t *Tensor, fracs []float64) (*Sequence, error) {
	return dataset.Stream(t, fracs)
}

// PaperGrowth is the growth schedule of the paper's Fig. 5: mode sizes
// at 75% to 100% of the full tensor in 5% steps.
func PaperGrowth() []float64 {
	return append([]float64(nil), dataset.PaperFractions...)
}

func validateIngestTensor(x *Tensor) error {
	if x == nil || x.NNZ() == 0 {
		return fmt.Errorf("dismastd: snapshot has no data")
	}
	return nil
}
