package dismastd_test

import (
	"bytes"
	"math"
	"testing"

	"dismastd"
)

// growingRatings builds a small nested pair of rating snapshots through
// the public API only.
func growingRatings(t *testing.T) (*dismastd.Tensor, *dismastd.Tensor) {
	t.Helper()
	full := dismastd.NewBuilder([]int{8, 6, 4})
	entries := [][4]int{
		{0, 0, 0, 5}, {1, 2, 0, 3}, {2, 1, 1, 4}, {3, 3, 1, 2}, {4, 4, 2, 5},
		{0, 5, 2, 1}, {5, 0, 2, 4}, {6, 2, 3, 3}, {7, 5, 3, 5}, {2, 4, 3, 2},
		{1, 1, 1, 4}, {3, 0, 0, 3}, {5, 3, 2, 2}, {6, 4, 1, 5}, {4, 2, 0, 1},
	}
	for _, e := range entries {
		full.Append([]int{e[0], e[1], e[2]}, float64(e[3]))
	}
	x := full.Build()
	return x.Prefix([]int{5, 5, 3}), x
}

func TestStreamCentralizedAndDistributedAgree(t *testing.T) {
	first, second := growingRatings(t)
	run := func(workers int) []*dismastd.Dense {
		s := dismastd.NewStream(dismastd.Options{Rank: 2, MaxIters: 8, Seed: 3, Workers: workers, Partitioner: dismastd.MTP})
		if _, err := s.Ingest(first); err != nil {
			t.Fatal(err)
		}
		rep, err := s.Ingest(second)
		if err != nil {
			t.Fatal(err)
		}
		if rep.EntriesTouched >= second.NNZ() {
			t.Fatalf("streaming step touched %d of %d entries", rep.EntriesTouched, second.NNZ())
		}
		if s.Snapshots() != 2 {
			t.Fatalf("Snapshots = %d", s.Snapshots())
		}
		return s.Factors()
	}
	central := run(1)
	distributed := run(3)
	for m := range central {
		for i := range central[m].Data {
			if d := math.Abs(central[m].Data[i] - distributed[m].Data[i]); d > 1e-7 {
				t.Fatalf("mode %d element %d differs by %v", m, i, d)
			}
		}
	}
}

func TestStreamPredictInRange(t *testing.T) {
	first, second := growingRatings(t)
	s := dismastd.NewStream(dismastd.Options{Rank: 3, MaxIters: 30, Seed: 5})
	if _, err := s.Ingest(first); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(second); err != nil {
		t.Fatal(err)
	}
	if len(s.Dims()) != 3 || s.Dims()[0] != 8 {
		t.Fatalf("Dims = %v", s.Dims())
	}
	// Predictions for observed cells should be finite and roughly in
	// the rating scale.
	p := s.Predict([]int{0, 0, 0})
	if math.IsNaN(p) || p < -10 || p > 20 {
		t.Fatalf("prediction %v implausible", p)
	}
}

func TestStreamValidation(t *testing.T) {
	s := dismastd.NewStream(dismastd.Options{Rank: 0})
	first, _ := growingRatings(t)
	if _, err := s.Ingest(first); err == nil {
		t.Fatal("rank 0 accepted")
	}
	s = dismastd.NewStream(dismastd.Options{Rank: 2})
	if _, err := s.Ingest(dismastd.NewBuilder([]int{2, 2}).Build()); err == nil {
		t.Fatal("empty snapshot accepted")
	}
	if s.Factors() != nil || s.Dims() != nil {
		t.Fatal("state before first ingest should be nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Predict before Ingest did not panic")
		}
	}()
	s.Predict([]int{0, 0})
}

func TestDecomposeStatic(t *testing.T) {
	_, x := growingRatings(t)
	res, err := dismastd.Decompose(x, 3, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Factors) != 3 || res.Fit <= 0 || res.Iters == 0 {
		t.Fatalf("result %+v", res)
	}
	v := dismastd.Predict(res.Factors, []int{0, 0, 0})
	if math.IsNaN(v) {
		t.Fatal("NaN prediction")
	}
}

func TestPartitionSlicesAPI(t *testing.T) {
	weights := []int64{10, 1, 1, 1, 1, 10, 1, 1}
	for _, method := range []dismastd.Partitioner{dismastd.GTP, dismastd.MTP} {
		assign, loads := dismastd.PartitionSlices(weights, 2, method)
		if len(assign) != len(weights) || len(loads) != 2 {
			t.Fatalf("%v: assign %d loads %d", method, len(assign), len(loads))
		}
		if loads[0]+loads[1] != 26 {
			t.Fatalf("%v: loads %v", method, loads)
		}
	}
	if dismastd.Imbalance([]int64{13, 13}) != 0 {
		t.Fatal("balanced loads should report 0")
	}
	if dismastd.GTP.String() != "GTP" || dismastd.MTP.String() != "MTP" {
		t.Fatal("partitioner names")
	}
}

func TestGenerateDatasetAndGrowth(t *testing.T) {
	x := dismastd.GenerateDataset(dismastd.DatasetNetflix, 5000, 7)
	if x.NNZ() < 4000 {
		t.Fatalf("nnz %d", x.NNZ())
	}
	seq, err := dismastd.GrowthSchedule(x, dismastd.PaperGrowth())
	if err != nil {
		t.Fatal(err)
	}
	if seq.Len() != 6 {
		t.Fatalf("schedule %d steps", seq.Len())
	}
	// The schedule feeds straight into a Stream.
	s := dismastd.NewStream(dismastd.Options{Rank: 2, MaxIters: 2, Seed: 9})
	for i := 0; i < seq.Len(); i++ {
		if _, err := s.Ingest(seq.Snapshot(i)); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

func TestTensorIORoundtrip(t *testing.T) {
	_, x := growingRatings(t)
	var txt, bin bytes.Buffer
	if err := dismastd.WriteTensorText(&txt, x); err != nil {
		t.Fatal(err)
	}
	if err := dismastd.WriteTensorBinary(&bin, x); err != nil {
		t.Fatal(err)
	}
	xt, err := dismastd.ReadTensorText(&txt)
	if err != nil {
		t.Fatal(err)
	}
	xb, err := dismastd.ReadTensorBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if xt.NNZ() != x.NNZ() || xb.NNZ() != x.NNZ() {
		t.Fatal("roundtrip lost entries")
	}
}

func TestNewSequenceAPI(t *testing.T) {
	_, x := growingRatings(t)
	seq, err := dismastd.NewSequence(x, [][]int{{5, 5, 3}, {8, 6, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Len() != 2 {
		t.Fatalf("Len = %d", seq.Len())
	}
	if _, err := dismastd.NewSequence(x, [][]int{{9, 6, 4}}); err == nil {
		t.Fatal("oversized step accepted")
	}
}

func TestStreamSaveResume(t *testing.T) {
	first, second := growingRatings(t)
	opts := dismastd.Options{Rank: 2, MaxIters: 10, Seed: 13}
	s := dismastd.NewStream(opts)
	if _, err := s.Ingest(first); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := s.Save(&ckpt); err != nil {
		t.Fatal(err)
	}
	restored, err := dismastd.ResumeStream(bytes.NewReader(ckpt.Bytes()), opts)
	if err != nil {
		t.Fatal(err)
	}
	repA, err := s.Ingest(second)
	if err != nil {
		t.Fatal(err)
	}
	repB, err := restored.Ingest(second)
	if err != nil {
		t.Fatal(err)
	}
	if repA.Loss != repB.Loss {
		t.Fatalf("resumed stream diverged: loss %v vs %v", repA.Loss, repB.Loss)
	}
	fa, fb := s.Factors(), restored.Factors()
	for m := range fa {
		for i := range fa[m].Data {
			if fa[m].Data[i] != fb[m].Data[i] {
				t.Fatalf("resumed factors differ at mode %d elem %d", m, i)
			}
		}
	}
}

func TestStreamSaveResumeErrors(t *testing.T) {
	s := dismastd.NewStream(dismastd.Options{Rank: 2})
	var buf bytes.Buffer
	if err := s.Save(&buf); err == nil {
		t.Fatal("Save before Ingest accepted")
	}
	if _, err := dismastd.ResumeStream(bytes.NewReader([]byte("junk")), dismastd.Options{Rank: 2}); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
	// Rank mismatch.
	first, _ := growingRatings(t)
	good := dismastd.NewStream(dismastd.Options{Rank: 2, MaxIters: 2})
	if _, err := good.Ingest(first); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := good.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := dismastd.ResumeStream(bytes.NewReader(buf.Bytes()), dismastd.Options{Rank: 5}); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	if _, err := dismastd.ResumeStream(bytes.NewReader(buf.Bytes()), dismastd.Options{Rank: 0}); err == nil {
		t.Fatal("invalid options accepted")
	}
}

func TestCompleteAPI(t *testing.T) {
	first, second := growingRatings(t)
	res, err := dismastd.Complete(first, dismastd.CompletionOptions{Rank: 2, MaxIters: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.RMSE < 0 || len(res.Factors) != 3 {
		t.Fatalf("result %+v", res)
	}
	next, err := dismastd.CompleteNext(res, second, dismastd.CompletionOptions{Rank: 2, MaxIters: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for m, d := range second.Dims {
		if next.Factors[m].Rows != d {
			t.Fatalf("mode %d not grown", m)
		}
	}
	if rmse := dismastd.PredictionRMSE(second, next.Factors); math.IsNaN(rmse) {
		t.Fatal("NaN prediction RMSE")
	}
	if _, err := dismastd.Complete(first, dismastd.CompletionOptions{Rank: 0}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	smaller := first
	if _, err := dismastd.CompleteNext(next, smaller, dismastd.CompletionOptions{Rank: 2}); err == nil {
		t.Fatal("shrinking snapshot accepted")
	}
}

func TestCompleteDistributedMatchesCentralized(t *testing.T) {
	first, _ := growingRatings(t)
	opts := dismastd.CompletionOptions{Rank: 2, MaxIters: 10, Seed: 7}
	central, err := dismastd.Complete(first, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 3
	opts.Partitioner = dismastd.MTP
	distributed, err := dismastd.Complete(first, opts)
	if err != nil {
		t.Fatal(err)
	}
	for m := range central.Factors {
		for i := range central.Factors[m].Data {
			if central.Factors[m].Data[i] != distributed.Factors[m].Data[i] {
				t.Fatalf("mode %d elem %d differs", m, i)
			}
		}
	}
}
