package dismastd_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"dismastd"
)

// stagedTensor builds a random sparse tensor whose every staged prefix
// has an entry at its corner, so an event feed of each stage's new
// region reaches exactly the stage's dims by coordinate growth alone.
func stagedTensor(t *testing.T, stages [][]int, nnz int, seed int64) *dismastd.Tensor {
	t.Helper()
	full := stages[len(stages)-1]
	rng := rand.New(rand.NewSource(seed))
	b := dismastd.NewBuilder(full)
	idx := make([]int, len(full))
	for e := 0; e < nnz; e++ {
		for m, d := range full {
			idx[m] = rng.Intn(d)
		}
		b.Append(idx, rng.Float64()+0.5)
	}
	for _, dims := range stages {
		for m, d := range dims {
			idx[m] = d - 1
		}
		b.Append(idx, 1)
	}
	return b.Build()
}

// eventsOf converts a tensor's entries into events in order.
func eventsOf(x *dismastd.Tensor) []dismastd.Event {
	out := make([]dismastd.Event, x.NNZ())
	for e := range out {
		out[e] = dismastd.Event{Coords: x.Coord(e, nil), Value: x.Val(e)}
	}
	return out
}

func equalFactors(t *testing.T, label string, a, b []*dismastd.Dense) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d modes", label, len(a), len(b))
	}
	for m := range a {
		if a[m].Rows != b[m].Rows || a[m].Cols != b[m].Cols {
			t.Fatalf("%s: mode %d is %dx%d vs %dx%d", label, m, a[m].Rows, a[m].Cols, b[m].Rows, b[m].Cols)
		}
		for i := range a[m].Data {
			if a[m].Data[i] != b[m].Data[i] {
				t.Fatalf("%s: mode %d differs at element %d: %v vs %v", label, m, i, a[m].Data[i], b[m].Data[i])
			}
		}
	}
}

// TestEventPathMatchesBulkAtBoundaries is the tentpole invariant: a
// stream fed each snapshot's new region as events, flushed at the
// snapshot boundary, holds factors bitwise identical to a stream fed
// the cumulative snapshots in bulk — for the centralized and the
// distributed engine alike.
func TestEventPathMatchesBulkAtBoundaries(t *testing.T) {
	stages := [][]int{{6, 5, 4}, {8, 6, 5}, {10, 8, 6}}
	full := stagedTensor(t, stages, 300, 42)
	for _, workers := range []int{1, 3} {
		opts := dismastd.Options{Rank: 3, MaxIters: 6, Seed: 9, Workers: workers}
		bulk := dismastd.NewStream(opts)
		ev := dismastd.NewStream(opts)
		prevDims := []int(nil)
		for si, dims := range stages {
			snap := full.Prefix(dims)
			if _, err := bulk.Ingest(snap); err != nil {
				t.Fatalf("workers=%d bulk %d: %v", workers, si, err)
			}
			var region *dismastd.Tensor
			if prevDims == nil {
				region = snap
			} else {
				region = snap.Complement(prevDims)
			}
			events := eventsOf(region)
			// Micro-batches of varying size, to exercise batching.
			for lo := 0; lo < len(events); {
				hi := lo + 1 + lo%3
				if hi > len(events) {
					hi = len(events)
				}
				if _, err := ev.IngestEvents(events[lo:hi]); err != nil {
					t.Fatalf("workers=%d events %d: %v", workers, si, err)
				}
				lo = hi
			}
			if _, err := ev.Flush(); err != nil {
				t.Fatalf("workers=%d flush %d: %v", workers, si, err)
			}
			equalFactors(t, "boundary", bulk.Factors(), ev.Factors())
			if bulk.Snapshots() != ev.Snapshots() {
				t.Fatalf("workers=%d: %d vs %d boundaries", workers, bulk.Snapshots(), ev.Snapshots())
			}
			prevDims = dims
		}
	}
}

// fitOf measures 1 − ‖X − X̂‖/‖X‖ over every cell of x.
func fitOf(s *dismastd.Stream, x *dismastd.Tensor) float64 {
	idx := make([]int, len(x.Dims))
	var walk func(m int) float64
	walk = func(m int) float64 {
		if m == len(x.Dims) {
			d := x.At(idx) - s.Predict(idx)
			return d * d
		}
		sum := 0.0
		for i := 0; i < x.Dims[m]; i++ {
			idx[m] = i
			sum += walk(m + 1)
		}
		return sum
	}
	return 1 - math.Sqrt(walk(0))/x.Norm()
}

// TestEventStreamFitProperty is the randomized property behind the
// parity guarantee: across random tensors and random micro-batch
// splits, the event-fed stream's factors are exactly the bulk stream's
// at every full-sweep boundary, and between boundaries the bounded-work
// updates keep the fit within tolerance of the bulk result.
func TestEventStreamFitProperty(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		seed := int64(100 + trial)
		rng := rand.New(rand.NewSource(seed))
		stages := [][]int{{5, 4, 4}, {7, 6, 5}}
		full := stagedTensor(t, stages, 150+trial*40, seed)
		opts := dismastd.Options{Rank: 2, MaxIters: 8, Seed: uint64(trial + 1)}
		bulk := dismastd.NewStream(opts)
		ev := dismastd.NewStream(opts)

		snap0 := full.Prefix(stages[0])
		if _, err := bulk.Ingest(snap0); err != nil {
			t.Fatal(err)
		}
		if _, err := ev.IngestEvents(eventsOf(snap0)); err != nil {
			t.Fatal(err)
		}
		if _, err := ev.Flush(); err != nil {
			t.Fatal(err)
		}

		snap1 := full.Prefix(stages[1])
		events := eventsOf(snap1.Complement(stages[0]))
		rng.Shuffle(len(events), func(i, j int) { events[i], events[j] = events[j], events[i] })
		for lo := 0; lo < len(events); {
			hi := lo + 1 + rng.Intn(4)
			if hi > len(events) {
				hi = len(events)
			}
			if _, err := ev.IngestEvents(events[lo:hi]); err != nil {
				t.Fatal(err)
			}
			lo = hi
		}
		if _, err := bulk.Ingest(snap1); err != nil {
			t.Fatal(err)
		}
		// Mid-window: bounded-work updates only, fit within tolerance.
		evFit, bulkFit := fitOf(ev, snap1), fitOf(bulk, snap1)
		if evFit < bulkFit-0.15 {
			t.Fatalf("trial %d: pre-flush event fit %v too far below bulk %v", trial, evFit, bulkFit)
		}
		// Boundary: exactly equal.
		if _, err := ev.Flush(); err != nil {
			t.Fatal(err)
		}
		equalFactors(t, "property boundary", bulk.Factors(), ev.Factors())
	}
}

// TestEventsGrowDims: out-of-range coordinates grow the live modes
// immediately — the multi-aspect case — and serving reflects the grown
// rows before any sweep.
func TestEventsGrowDims(t *testing.T) {
	first, _ := growingRatings(t)
	s := dismastd.NewStream(dismastd.Options{Rank: 2, MaxIters: 5, Seed: 3})
	if _, err := s.Ingest(first); err != nil {
		t.Fatal(err)
	}
	rep, err := s.IngestEvents([]dismastd.Event{{Coords: []int{9, 7, 4}, Value: 2.5}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Grew {
		t.Fatal("growth event did not report Grew")
	}
	want := []int{10, 8, 5}
	for m, d := range s.Dims() {
		if d != want[m] {
			t.Fatalf("dims %v, want %v", s.Dims(), want)
		}
	}
	if rep.RowsUpdated == 0 {
		t.Fatal("growth event updated no rows")
	}
	s.Predict([]int{9, 7, 4}) // must not panic on the grown region
}

// TestSweepEveryAutoFlush: the drift backstop fires on its own once
// the pending region reaches the threshold.
func TestSweepEveryAutoFlush(t *testing.T) {
	first, _ := growingRatings(t)
	s := dismastd.NewStream(dismastd.Options{Rank: 2, MaxIters: 5, Seed: 3, SweepEvery: 3})
	if _, err := s.Ingest(first); err != nil {
		t.Fatal(err)
	}
	var swept bool
	for i := 0; i < 3; i++ {
		rep, err := s.IngestEvents([]dismastd.Event{{Coords: []int{6, 5, 3}, Value: float64(i + 1)}})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Sweep != nil {
			swept = true
			if rep.Pending != 0 {
				t.Fatalf("pending %d after auto sweep", rep.Pending)
			}
		}
	}
	if !swept {
		t.Fatal("SweepEvery=3 never fired after 3 events")
	}
	if s.Snapshots() != 2 {
		t.Fatalf("%d boundaries, want 2 (init + auto sweep)", s.Snapshots())
	}
}

// TestPreInitEventsMatchBulkInit: events buffered before any
// decomposition flush into exactly the CP-ALS init a bulk Ingest of
// the same data performs.
func TestPreInitEventsMatchBulkInit(t *testing.T) {
	first, _ := growingRatings(t)
	opts := dismastd.Options{Rank: 2, MaxIters: 8, Seed: 5}
	bulk := dismastd.NewStream(opts)
	if _, err := bulk.Ingest(first); err != nil {
		t.Fatal(err)
	}
	ev := dismastd.NewStream(opts)
	events := eventsOf(first)
	if _, err := ev.IngestEvents(events[:4]); err != nil {
		t.Fatal(err)
	}
	if ev.Factors() != nil {
		t.Fatal("factors exist before the first flush")
	}
	if _, err := ev.IngestEvents(events[4:]); err != nil {
		t.Fatal(err)
	}
	rep, err := ev.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Snapshot != 0 || rep.Iters == 0 {
		t.Fatalf("init flush report %+v", rep)
	}
	equalFactors(t, "pre-init", bulk.Factors(), ev.Factors())
}

// TestSaveResumeKeepsSnapshotCounter: the checkpoint carries the
// boundary counter, so the resumed stream's next step uses the same
// index — and therefore the same growth seed — as the uninterrupted
// one.
func TestSaveResumeKeepsSnapshotCounter(t *testing.T) {
	stages := [][]int{{6, 5, 4}, {8, 6, 5}, {10, 8, 6}}
	full := stagedTensor(t, stages, 250, 77)
	opts := dismastd.Options{Rank: 2, MaxIters: 5, Seed: 11}
	s := dismastd.NewStream(opts)
	for _, dims := range stages[:2] {
		if _, err := s.Ingest(full.Prefix(dims)); err != nil {
			t.Fatal(err)
		}
	}
	var ckpt bytes.Buffer
	if err := s.Save(&ckpt); err != nil {
		t.Fatal(err)
	}
	restored, err := dismastd.ResumeStream(bytes.NewReader(ckpt.Bytes()), opts)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Snapshots() != 2 {
		t.Fatalf("restored stream reports %d snapshots, want 2", restored.Snapshots())
	}
	repA, err := s.Ingest(full.Prefix(stages[2]))
	if err != nil {
		t.Fatal(err)
	}
	repB, err := restored.Ingest(full.Prefix(stages[2]))
	if err != nil {
		t.Fatal(err)
	}
	if repA.Snapshot != 2 || repB.Snapshot != 2 {
		t.Fatalf("snapshot indices %d vs %d, want 2", repA.Snapshot, repB.Snapshot)
	}
	equalFactors(t, "resumed", s.Factors(), restored.Factors())
}

// TestSaveFlushesPendingEvents: Save checkpoints a sweep boundary, so
// pending events are flushed into it rather than dropped.
func TestSaveFlushesPendingEvents(t *testing.T) {
	first, _ := growingRatings(t)
	opts := dismastd.Options{Rank: 2, MaxIters: 5, Seed: 3}
	s := dismastd.NewStream(opts)
	if _, err := s.Ingest(first); err != nil {
		t.Fatal(err)
	}
	if _, err := s.IngestEvents([]dismastd.Event{{Coords: []int{5, 5, 3}, Value: 4}}); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := s.Save(&ckpt); err != nil {
		t.Fatal(err)
	}
	if s.Pending() != 0 {
		t.Fatalf("%d events still pending after Save", s.Pending())
	}
	restored, err := dismastd.ResumeStream(bytes.NewReader(ckpt.Bytes()), opts)
	if err != nil {
		t.Fatal(err)
	}
	equalFactors(t, "flushed checkpoint", s.Factors(), restored.Factors())
}

// TestBulkIngestFlushesPendingEvents: a bulk snapshot arriving with
// events pending flushes them first — two boundaries, in order.
func TestBulkIngestFlushesPendingEvents(t *testing.T) {
	first, second := growingRatings(t)
	s := dismastd.NewStream(dismastd.Options{Rank: 2, MaxIters: 5, Seed: 3})
	if _, err := s.Ingest(first); err != nil {
		t.Fatal(err)
	}
	if _, err := s.IngestEvents([]dismastd.Event{{Coords: []int{5, 5, 3}, Value: 4}}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Ingest(second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Snapshot != 2 {
		t.Fatalf("bulk step after pending flush has index %d, want 2", rep.Snapshot)
	}
	if s.Pending() != 0 {
		t.Fatalf("%d events pending after bulk ingest", s.Pending())
	}
}

func TestEventValidation(t *testing.T) {
	s := dismastd.NewStream(dismastd.Options{Rank: 2})
	cases := map[string][]dismastd.Event{
		"no coords":      {{Value: 1}},
		"negative coord": {{Coords: []int{0, -1, 0}, Value: 1}},
		"nan value":      {{Coords: []int{0, 0, 0}, Value: math.NaN()}},
		"mixed order":    {{Coords: []int{0, 0, 0}, Value: 1}, {Coords: []int{0, 0}, Value: 1}},
	}
	for name, events := range cases {
		if _, err := s.IngestEvents(events); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	if _, err := s.Flush(); err == nil {
		t.Fatal("Flush before any data accepted")
	}
	first, _ := growingRatings(t)
	if _, err := s.Ingest(first); err != nil {
		t.Fatal(err)
	}
	if sr, err := s.Flush(); err != nil || sr != nil {
		t.Fatalf("empty flush: %v %v", sr, err)
	}
}

// TestIngestEventsNoAllocSteadyState pins the acceptance criterion at
// the public API: a warmed stream absorbs a micro-batch with zero heap
// allocations (no growth, no sweep in the window).
func TestIngestEventsNoAllocSteadyState(t *testing.T) {
	first, _ := growingRatings(t)
	s := dismastd.NewStream(dismastd.Options{Rank: 2, MaxIters: 5, Seed: 3})
	if _, err := s.Ingest(first); err != nil {
		t.Fatal(err)
	}
	batch := []dismastd.Event{
		{Coords: []int{1, 2, 1}, Value: 1.5},
		{Coords: []int{4, 0, 2}, Value: -0.5},
	}
	for i := 0; i < 8; i++ { // warm delta capacity and workspace slots
		if _, err := s.IngestEvents(batch); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // re-warm post-reset path
		if _, err := s.IngestEvents(batch); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := s.IngestEvents(batch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state IngestEvents allocates %v per run", allocs)
	}
}
