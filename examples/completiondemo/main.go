// Completiondemo: predicting missing ratings. The paper's introduction
// frames recommendation as completing the missing cells of a streaming
// rating tensor; this example contrasts the two fitting modes the
// library offers on exactly that task:
//
//   - Decompose: classic CP-ALS over the full tensor, where every
//     unobserved cell counts as a zero — fine for signal analysis,
//     systematically biased toward zero for recommendations;
//   - Complete / CompleteNext: weighted ALS over the observed entries
//     only, the right model for sparse ratings.
//
// It builds a low-rank ground-truth preference model, reveals a
// fraction of its cells as a growing multi-aspect stream, and reports
// held-out prediction error for both approaches after each snapshot.
//
//	go run ./examples/completiondemo
package main

import (
	"fmt"
	"log"
	"math"

	"dismastd"
)

const (
	users, items, weeks = 40, 30, 8
	rank                = 3
)

// lcg is a tiny deterministic generator for the demo.
type lcg uint64

func (l *lcg) next() float64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return float64(*l>>11) / (1 << 53)
}
func (l *lcg) intn(n int) int { return int(l.next() * float64(n)) }

func main() {
	src := lcg(7)

	// Ground-truth preferences: a rank-3 model with positive factors.
	truth := make([][][]float64, 3)
	dims := []int{users, items, weeks}
	for m, d := range dims {
		truth[m] = make([][]float64, d)
		for i := range truth[m] {
			truth[m][i] = make([]float64, rank)
			for r := range truth[m][i] {
				truth[m][i][r] = src.next() + 0.2
			}
		}
	}
	at := func(u, p, w int) float64 {
		s := 0.0
		for r := 0; r < rank; r++ {
			s += truth[0][u][r] * truth[1][p][r] * truth[2][w][r]
		}
		return s
	}

	// Reveal ~12% of cells as training observations and hold out a
	// disjoint 2% for evaluation.
	train := dismastd.NewBuilder(dims)
	held := dismastd.NewBuilder(dims)
	seen := map[[3]int]bool{}
	sample := func(b *dismastd.Builder, count int) {
		for placed := 0; placed < count; {
			u, p, w := src.intn(users), src.intn(items), src.intn(weeks)
			key := [3]int{u, p, w}
			if seen[key] {
				continue
			}
			seen[key] = true
			b.Append([]int{u, p, w}, at(u, p, w))
			placed++
		}
	}
	sample(train, 1150)
	sample(held, 200)
	full := train.Build()
	heldout := held.Build()

	// Stream the observations: the service grows in users, items, and
	// weeks simultaneously.
	seq, err := dismastd.GrowthSchedule(full, []float64{0.7, 0.85, 1.0})
	if err != nil {
		log.Fatal(err)
	}

	copts := dismastd.CompletionOptions{Rank: rank, MaxIters: 120, Lambda: 1e-5, Seed: 11}
	var model *dismastd.CompletionResult
	for i := 0; i < seq.Len(); i++ {
		snap := seq.Snapshot(i)
		if i == 0 {
			model, err = dismastd.Complete(snap, copts)
		} else {
			model, err = dismastd.CompleteNext(model, snap, copts)
		}
		if err != nil {
			log.Fatal(err)
		}
		// Evaluate only on held-out cells inside the snapshot's bounds.
		inBounds := heldout.Prefix(snap.Dims)
		fmt.Printf("snapshot %d (%d obs): completion train RMSE %.4f, held-out RMSE %.4f over %d cells\n",
			i, snap.NNZ(), model.RMSE, dismastd.PredictionRMSE(inBounds, model.Factors), inBounds.NNZ())
	}

	// Baseline: zero-imputed CP on the final snapshot.
	cpRes, err := dismastd.Decompose(full, rank, 120)
	if err != nil {
		log.Fatal(err)
	}
	cpErr := dismastd.PredictionRMSE(heldout, cpRes.Factors)
	complErr := dismastd.PredictionRMSE(heldout, model.Factors)
	scale := 0.0
	for e := 0; e < heldout.NNZ(); e++ {
		scale += heldout.Val(e) * heldout.Val(e)
	}
	scale = math.Sqrt(scale / float64(heldout.NNZ()))
	fmt.Printf("\nheld-out RMSE (typical rating magnitude %.3f):\n", scale)
	fmt.Printf("  completion (observed-only):   %.4f\n", complErr)
	fmt.Printf("  plain CP (zeros imputed):     %.4f\n", cpErr)
	fmt.Printf("  completion is %.1fx more accurate for recommendation\n", cpErr/complErr)
}
