// Multiprocess: run a DisMASTD streaming step as a REAL multi-process
// cluster on this machine — separate OS processes exchanging factor
// rows and Gram reductions over TCP, exactly the deployment cmd/worker
// supports.
//
//	go run ./examples/multiprocess
//
// The driver writes two nested snapshots to disk, starts a rendezvous,
// and re-executes itself three times in worker mode. Every worker
// process loads the same files, deterministically builds the same
// distribution plan, joins the rendezvous for its rank, and runs the
// SPMD step; rank 0 reports the result. A second round then performs
// the incremental streaming step from the saved state.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"dismastd"
	"dismastd/internal/cluster"
	"dismastd/internal/core"
	"dismastd/internal/dtd"
	"dismastd/internal/partition"
	"dismastd/internal/tensor"
)

const (
	workers = 3
	rank    = 5
)

var (
	role   = flag.String("role", "driver", "internal: driver or worker")
	join   = flag.String("join", "", "internal: rendezvous address")
	dir    = flag.String("dir", "", "internal: working directory")
	stepNo = flag.Int("step", 0, "internal: 0 = bootstrap, 1 = streaming step")
)

func main() {
	flag.Parse()
	if *role == "worker" {
		if err := workerMain(); err != nil {
			log.Fatalf("worker: %v", err)
		}
		return
	}
	if err := driverMain(); err != nil {
		log.Fatal(err)
	}
}

func driverMain() error {
	tmp, err := os.MkdirTemp("", "dismastd-multiprocess")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	// Two nested snapshots of a Book-shaped stream.
	full := dismastd.GenerateDataset(dismastd.DatasetBook, 8000, 5)
	seq, err := dismastd.GrowthSchedule(full, []float64{0.85, 1.0})
	if err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		f, err := os.Create(filepath.Join(tmp, fmt.Sprintf("snap%d.bin", i)))
		if err != nil {
			return err
		}
		if err := dismastd.WriteTensorBinary(f, seq.Snapshot(i)); err != nil {
			return err
		}
		f.Close()
	}

	self, err := os.Executable()
	if err != nil {
		return err
	}
	for step := 0; step < 2; step++ {
		rv, err := cluster.NewRendezvous("127.0.0.1:0", workers)
		if err != nil {
			return err
		}
		fmt.Printf("== step %d: launching %d worker processes against %s ==\n", step, workers, rv.Addr())
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				cmd := exec.Command(self,
					"-role", "worker", "-join", rv.Addr(), "-dir", tmp, "-step", fmt.Sprint(step))
				cmd.Stdout = os.Stdout
				cmd.Stderr = os.Stderr
				errs[w] = cmd.Run()
			}(w)
		}
		wg.Wait()
		rv.Close()
		for w, err := range errs {
			if err != nil {
				return fmt.Errorf("worker process %d: %w", w, err)
			}
		}
	}
	fmt.Println("== both steps completed across real OS processes ==")
	return nil
}

func workerMain() error {
	load := func(name string) (*tensor.Tensor, error) {
		f, err := os.Open(filepath.Join(*dir, name))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return tensor.ReadBinary(f)
	}
	snap, err := load(fmt.Sprintf("snap%d.bin", *stepNo))
	if err != nil {
		return err
	}
	prev := dtd.EmptyState(snap.Order(), rank)
	if *stepNo > 0 {
		f, err := os.Open(filepath.Join(*dir, "state.gob"))
		if err != nil {
			return err
		}
		prev, err = dtd.ReadState(f)
		f.Close()
		if err != nil {
			return err
		}
	}

	node, err := cluster.JoinTCP(*join, "127.0.0.1:0", 30*time.Second)
	if err != nil {
		return err
	}
	defer node.Close()

	job, err := core.NewStepJob(prev, snap, core.Options{
		Rank: rank, MaxIters: 5, Seed: 9,
		Workers: node.Size(), Method: partition.MTPMethod,
	})
	if err != nil {
		return err
	}
	stats, err := node.Run(job.RunWorker)
	if err != nil {
		return err
	}
	fmt.Printf("  pid %d rank %d/%d: sent %d KB in %d messages\n",
		os.Getpid(), node.Rank(), node.Size(),
		stats.Ranks[0].BytesSent/1024, stats.Ranks[0].MsgsSent)

	if node.Rank() != 0 {
		return nil
	}
	st, sum, err := job.Result()
	if err != nil {
		return err
	}
	fmt.Printf("  rank 0: step %d done, %d sweeps, loss %.2f, touched %d entries\n",
		*stepNo, sum.Iters, sum.Loss, sum.ComplementNNZ)
	f, err := os.Create(filepath.Join(*dir, "state.gob"))
	if err != nil {
		return err
	}
	defer f.Close()
	return dtd.WriteState(f, st)
}
