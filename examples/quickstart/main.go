// Quickstart: decompose a tiny multi-aspect streaming tensor and
// predict a missing entry.
//
//	go run ./examples/quickstart
//
// A rating tensor ⟨user, product, day⟩ grows in all three modes between
// two snapshots (new users AND new products AND new days — the
// multi-aspect setting). The second snapshot is absorbed incrementally:
// only the newly arrived ratings are processed.
package main

import (
	"fmt"
	"log"

	"dismastd"
)

// ratings is the full history: the first 8 rows fall inside the day-1
// snapshot bounds (5 users, 4 products, 2 days); the rest arrive later
// and extend every mode.
var ratings = [][4]int{
	{0, 0, 0, 5}, {0, 2, 0, 3}, {1, 1, 0, 4}, {2, 3, 1, 2},
	{3, 0, 1, 4}, {4, 2, 1, 5}, {1, 3, 0, 1}, {2, 0, 0, 3},
	{5, 4, 2, 4}, {6, 5, 2, 5}, {5, 0, 2, 2}, {0, 4, 2, 3},
	{3, 5, 2, 4}, {6, 1, 2, 1},
}

func buildFull() *dismastd.Tensor {
	b := dismastd.NewBuilder([]int{7, 6, 3})
	for _, e := range ratings {
		b.Append([]int{e[0], e[1], e[2]}, float64(e[3]))
	}
	return b.Build()
}

func main() {
	full := buildFull()
	snapshot1 := full.Prefix([]int{5, 4, 2}) // day 1: subset of users/products/days
	snapshot2 := full                        // day 2: everything

	stream := dismastd.NewStream(dismastd.Options{
		Rank:        3,
		MaxIters:    30,
		Workers:     2,            // distributed across 2 in-process workers
		Partitioner: dismastd.MTP, // max-min fit load balancing
		Seed:        7,
	})

	rep, err := stream.Ingest(snapshot1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot 0: dims=%v touched %d entries, %d sweeps, loss %.4f\n",
		snapshot1.Dims, rep.EntriesTouched, rep.Iters, rep.Loss)

	rep, err = stream.Ingest(snapshot2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot 1: dims=%v touched only %d new entries (of %d total), %d sweeps, loss %.4f\n",
		snapshot2.Dims, rep.EntriesTouched, snapshot2.NNZ(), rep.Iters, rep.Loss)

	// Predict an unobserved rating: user 1 has not rated product 4 yet.
	fmt.Printf("predicted rating of user 1 for product 4 on day 2: %.2f\n",
		stream.Predict([]int{1, 4, 2}))
}
