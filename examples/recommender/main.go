// Recommender: the paper's motivating application (Section I). A
// ⟨user, product, time⟩ rating tensor streams in — new users, new
// products, and new time slots arrive together — and after each
// snapshot the decomposition serves top-N product recommendations from
// the latent factors.
//
//	go run ./examples/recommender
package main

import (
	"fmt"
	"log"
	"sort"

	"dismastd"
)

func main() {
	// A Netflix-shaped synthetic rating stream: skewed user/product
	// popularity, 20k ratings, growing 75% → 100% across every mode.
	full := dismastd.GenerateDataset(dismastd.DatasetNetflix, 20000, 11)
	seq, err := dismastd.GrowthSchedule(full, dismastd.PaperGrowth())
	if err != nil {
		log.Fatal(err)
	}

	stream := dismastd.NewStream(dismastd.Options{
		Rank:        10,
		MaxIters:    10,
		Workers:     4,
		Partitioner: dismastd.MTP,
		Seed:        11,
	})
	for i := 0; i < seq.Len(); i++ {
		snap := seq.Snapshot(i)
		rep, err := stream.Ingest(snap)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("snapshot %d: %d users x %d products x %d slots, %d new ratings absorbed in %d sweeps (loss %.1f)\n",
			i, snap.Dims[0], snap.Dims[1], snap.Dims[2], rep.EntriesTouched, rep.Iters, rep.Loss)
	}

	// Recommend for a few users: score every product at the latest time
	// slot and keep the top 3.
	dims := stream.Dims()
	lastSlot := dims[2] - 1
	for _, user := range []int{0, 1, 2} {
		type scored struct {
			product int
			score   float64
		}
		scores := make([]scored, 0, dims[1])
		for p := 0; p < dims[1]; p++ {
			scores = append(scores, scored{p, stream.Predict([]int{user, p, lastSlot})})
		}
		sort.Slice(scores, func(a, b int) bool { return scores[a].score > scores[b].score })
		fmt.Printf("user %d top products:", user)
		for _, s := range scores[:3] {
			fmt.Printf("  #%d (%.2f)", s.product, s.score)
		}
		fmt.Println()
	}
}
