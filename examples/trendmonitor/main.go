// Trendmonitor: streaming social-data analysis. A ⟨hashtag, user,
// hour⟩ activity tensor grows every hour — new hashtags are coined, new
// users join, time advances — and the decomposition's latent components
// are inspected after each snapshot to surface the dominant activity
// patterns and the hashtags driving them.
//
//	go run ./examples/trendmonitor
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"dismastd"
)

const (
	tags  = 60
	users = 200
	hours = 12
)

// synthActivity builds an activity tensor with two planted trends: an
// "established" topic active all day on early tags, and a "breaking"
// topic that explodes in the final hours on late-coined tags.
func synthActivity() *dismastd.Tensor {
	b := dismastd.NewBuilder([]int{tags, users, hours})
	seed := uint64(1)
	next := func(n int) int { // tiny deterministic LCG for the demo
		seed = seed*6364136223846793005 + 1442695040888963407
		return int((seed >> 33) % uint64(n))
	}
	// Established topic: tags 0-9, steady volume.
	for i := 0; i < 3000; i++ {
		b.Append([]int{next(10), next(users), next(hours)}, 1)
	}
	// Breaking topic: tags coined late (45-59), active only in the last
	// 3 hours, heavy volume.
	for i := 0; i < 2500; i++ {
		b.Append([]int{45 + next(15), next(users), hours - 3 + next(3)}, 1)
	}
	// Background noise.
	for i := 0; i < 1200; i++ {
		b.Append([]int{next(tags), next(users), next(hours)}, 1)
	}
	return b.Build()
}

func main() {
	full := synthActivity()
	// Hourly snapshots: the tag and user modes grow with time as new
	// hashtags and accounts appear.
	var steps [][]int
	for h := 9; h <= hours; h++ {
		frac := float64(h) / hours
		steps = append(steps, []int{
			int(math.Ceil(tags * frac)),
			int(math.Ceil(users * frac)),
			h,
		})
	}
	seq, err := dismastd.NewSequence(full, steps)
	if err != nil {
		log.Fatal(err)
	}

	stream := dismastd.NewStream(dismastd.Options{Rank: 4, MaxIters: 15, Workers: 3, Partitioner: dismastd.MTP, Seed: 3})
	for i := 0; i < seq.Len(); i++ {
		snap := seq.Snapshot(i)
		rep, err := stream.Ingest(snap)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("hour %2d: +%d events absorbed (%d sweeps)\n", steps[i][2], rep.EntriesTouched, rep.Iters)
	}

	// Rank components by their time-mode energy in the final hours to
	// find what is trending NOW, then name each trend by its top tags.
	factors := stream.Factors()
	tagF, hourF := factors[0], factors[2]
	rank := tagF.Cols
	type trend struct {
		comp   int
		recent float64
	}
	var trends []trend
	for r := 0; r < rank; r++ {
		recent := 0.0
		for h := hours - 3; h < hours; h++ {
			recent += hourF.At(h, r) * hourF.At(h, r)
		}
		trends = append(trends, trend{r, recent})
	}
	sort.Slice(trends, func(a, b int) bool { return trends[a].recent > trends[b].recent })

	fmt.Println("\ntrending components (by last-3-hours energy):")
	for _, tr := range trends[:2] {
		type tagScore struct {
			tag   int
			score float64
		}
		var ts []tagScore
		for g := 0; g < tags; g++ {
			ts = append(ts, tagScore{g, math.Abs(tagF.At(g, tr.comp))})
		}
		sort.Slice(ts, func(a, b int) bool { return ts[a].score > ts[b].score })
		fmt.Printf("  component %d (energy %.2f), top hashtags:", tr.comp, tr.recent)
		for _, s := range ts[:5] {
			fmt.Printf(" #tag%d", s.tag)
		}
		fmt.Println()
	}
}
