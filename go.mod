module dismastd

go 1.22
