package dismastd

import (
	"fmt"
	"io"
	"math"
	"time"

	"dismastd/internal/core"
	"dismastd/internal/dtd"
	"dismastd/internal/layout"
	"dismastd/internal/partition"
	"dismastd/internal/sample"
	"dismastd/internal/tensor"
	"dismastd/internal/xrand"
)

// Options configures a streaming decomposer.
type Options struct {
	// Rank is the number of CP components R. Required.
	Rank int
	// MaxIters bounds the ALS sweeps per snapshot. Default 10, the
	// paper's setting.
	MaxIters int
	// Tol stops a snapshot's iteration when the relative loss change
	// falls below it. Default 1e-6.
	Tol float64
	// ForgettingFactor is the paper's μ ∈ (0, 1]: how strongly the
	// previous decomposition anchors the old region. Default 0.8.
	ForgettingFactor float64
	// Seed makes runs reproducible. Default 1.
	Seed uint64

	// Workers selects the engine: 1 (default) runs the centralized
	// dynamic algorithm (DTD); >1 runs distributed DisMASTD on an
	// in-process cluster of that many workers.
	Workers int
	// Parts is the number of tensor partitions per mode for the
	// distributed engine; it defaults to Workers (the paper's
	// recommended setting).
	Parts int
	// Partitioner chooses GTP or MTP for the distributed engine.
	// Default GTP; MTP balances better on skewed data.
	Partitioner Partitioner

	// Threads sizes the shared-memory pool each engine (and, for the
	// distributed engine, each worker) runs its numeric kernels on.
	// 0 or 1 means sequential. Factors are bitwise identical at every
	// value — parallelism never reorders a floating-point reduction.
	Threads int

	// Layout selects the sparse-kernel representation: "coo" (or "",
	// the default) walks the tensor's coordinate arrays in place;
	// "compiled" compiles each snapshot region once into a mode-sorted,
	// fiber-grouped layout that every sweep then reuses. Factors are
	// bitwise identical under either — the layout changes memory
	// traffic, never floating-point order.
	Layout string

	// Solver selects the per-sweep least-squares strategy: "exact" (or
	// "", the default) runs the full MTTKRP over every entry of the
	// snapshot region; "sampled" replaces it with a randomized
	// leverage-score sketch of Samples rows per mode — sublinear in the
	// region's non-zeros once they dwarf the sketch, at the cost of a
	// small, Samples-controlled fit gap. Sampled runs are reproducible:
	// the same seed gives bitwise-identical factors at every thread
	// count and on repeated runs at the same Workers value.
	Solver string
	// Samples is the sketch size S per mode when Solver is "sampled";
	// 0 selects the default (8192). Larger S tightens the fit gap and
	// costs proportionally more per sweep.
	Samples int

	// SweepEvery fires the drift-backstop full ALS sweep automatically
	// once that many events are pending. 0 (the default) sweeps only on
	// an explicit Flush, a bulk Ingest, or Save. Bulk-only streams
	// never consult it.
	SweepEvery int
}

func (o Options) withDefaults() (Options, error) {
	if o.Rank <= 0 {
		return o, fmt.Errorf("dismastd: Rank must be positive, got %d", o.Rank)
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	if o.Workers < 0 {
		return o, fmt.Errorf("dismastd: Workers must be positive, got %d", o.Workers)
	}
	if o.Threads < 0 {
		return o, fmt.Errorf("dismastd: Threads must be non-negative, got %d", o.Threads)
	}
	if o.SweepEvery < 0 {
		return o, fmt.Errorf("dismastd: SweepEvery must be non-negative, got %d", o.SweepEvery)
	}
	if _, err := layout.ParseKind(o.Layout); err != nil {
		return o, fmt.Errorf("dismastd: %v", err)
	}
	if _, err := sample.ParseKind(o.Solver); err != nil {
		return o, fmt.Errorf("dismastd: %v", err)
	}
	if o.Samples < 0 {
		return o, fmt.Errorf("dismastd: Samples must be non-negative, got %d", o.Samples)
	}
	return o, nil
}

// layoutKind returns the parsed Layout; call after withDefaults.
func (o Options) layoutKind() layout.Kind {
	k, _ := layout.ParseKind(o.Layout)
	return k
}

// solverKind returns the parsed Solver; call after withDefaults.
func (o Options) solverKind() sample.Kind {
	k, _ := sample.ParseKind(o.Solver)
	return k
}

// Event is one streaming observation: a value at a coordinate. Events
// outside the current mode sizes grow the tensor — the multi-aspect
// case — with the affected modes extended to cover the coordinate.
type Event struct {
	Coords []int
	Value  float64
}

// StepReport summarises what one full-sweep boundary did — a bulk
// Ingest, or the flush of accumulated events.
type StepReport struct {
	Snapshot       int           // 0-based snapshot index
	Iters          int           // ALS sweeps performed
	Loss           float64       // √L — the paper's Eq. (4) objective (Eq. 1 for the first snapshot)
	EntriesTouched int           // non-zeros processed: the whole first snapshot, then only each delta
	Wall           time.Duration // processing time of this call
	BytesOnWire    int64         // distributed engine only: measured traffic
	Imbalance      []float64     // distributed engine only: per-mode partition load CV
}

// EventReport summarises one IngestEvents call. It is returned by
// value and its Dims slice is reused by the stream — copy it if you
// keep it past the next call.
type EventReport struct {
	Events      int         // events admitted by this call
	RowsUpdated int64       // factor rows re-solved (bounded work actually done)
	Pending     int         // events accumulated toward the next full sweep
	Grew        bool        // whether this call grew any mode
	Dims        []int       // current mode sizes after the call
	Sweep       *StepReport // set when the drift backstop fired during this call
	Wall        time.Duration
}

// Stream decomposes a multi-aspect streaming tensor. Create with
// NewStream, then feed it either nested bulk snapshots (Ingest) or
// individual events and micro-batches (IngestEvents), and read the
// current factors or predictions at any point.
//
// The two paths share one advance core. Bulk Ingest runs a full ALS
// sweep over each snapshot's newly arrived region, exactly as before.
// IngestEvents accumulates entries into a pending region and re-solves
// only the factor rows each micro-batch touches — bounded work per
// event — while the pending region awaits the next full sweep: the
// drift backstop that Flush, a bulk Ingest, Save, or the SweepEvery
// threshold triggers. At that boundary the sweep advances from the
// anchor (the state of the previous boundary) over the accumulated
// entries, so a stream fed the same new-region data as events or as a
// bulk snapshot holds bitwise-identical factors at every boundary.
// Between boundaries the event-updated factors serve reads; events
// landing wholly inside the anchor region refine those serving factors
// but are superseded at the next sweep, which anchors on the region's
// already-decomposed history (the streaming model's old-data
// contract).
type Stream struct {
	opts     Options
	vopts    Options     // resolved once by ensureOpts (never re-validated per call)
	lk       layout.Kind // parsed once alongside vopts
	sk       sample.Kind // parsed once alongside vopts
	optsErr  error
	optsDone bool

	state   *dtd.State // live factors: bulk results plus event-path row updates
	step    int        // full-sweep boundaries completed (snapshot index)
	updater *dtd.Updater
	session *core.Session // persistent cluster for Workers > 1, created on first use

	// Pre-Init event accumulation: before any data has been decomposed
	// there are no factors to update, so events buffer here and the
	// first flush runs full CP-ALS over them.
	preOrder  int
	preDims   []int
	preCoords []int32
	preVals   []float64

	// Reused per-call scratch, so steady-state IngestEvents does not
	// allocate.
	evCoords []int32
	evVals   []float64
	growDims []int
	idxBuf   []int
	rep      EventReport
}

// NewStream returns an empty streaming decomposer. The options are
// validated once, at the first call that needs them.
func NewStream(opts Options) *Stream { return &Stream{opts: opts} }

// ensureOpts resolves and validates the options exactly once; every
// later call reuses the cached resolution (and the cached error).
func (s *Stream) ensureOpts() error {
	if !s.optsDone {
		s.vopts, s.optsErr = s.opts.withDefaults()
		if s.optsErr == nil {
			s.lk = s.vopts.layoutKind()
			s.sk = s.vopts.solverKind()
		}
		s.optsDone = true
	}
	return s.optsErr
}

func (s *Stream) dtdOptions(seed uint64) dtd.Options {
	return dtd.Options{
		Rank: s.vopts.Rank, MaxIters: s.vopts.MaxIters, Tol: s.vopts.Tol,
		Mu: s.vopts.ForgettingFactor, Seed: seed,
		Threads: s.vopts.Threads, Layout: s.lk,
		Solver: s.sk, Samples: s.vopts.Samples,
	}
}

func (s *Stream) coreOptions(seed uint64) core.Options {
	return core.Options{
		Rank: s.vopts.Rank, MaxIters: s.vopts.MaxIters, Tol: s.vopts.Tol,
		Mu: s.vopts.ForgettingFactor, Seed: seed,
		Workers: s.vopts.Workers, Parts: s.vopts.Parts,
		Method:  partition.Method(s.vopts.Partitioner),
		Threads: s.vopts.Threads, Layout: s.lk,
		Solver: s.sk, Samples: s.vopts.Samples,
	}
}

// Ingest advances the decomposition to the given snapshot, which must
// contain every previously ingested snapshot as a prefix sub-tensor.
// The first snapshot is decomposed with full CP-ALS; every later one
// costs work proportional to the newly arrived data only. Events still
// pending from IngestEvents are flushed (their own sweep boundary)
// before the snapshot's step runs.
func (s *Stream) Ingest(snapshot *Tensor) (*StepReport, error) {
	if err := s.ensureOpts(); err != nil {
		return nil, err
	}
	if err := validateIngestTensor(snapshot); err != nil {
		return nil, err
	}
	if s.pendingEvents() > 0 {
		if _, err := s.Flush(); err != nil {
			return nil, err
		}
	}
	return s.advance(s.state, snapshot)
}

// IngestEvents admits a micro-batch of events. Coordinates outside the
// current mode sizes grow the affected modes. Each touched factor row
// is re-solved with the Eq. (5) row update against the pending region
// — bounded work per event — and the batch joins the pending region
// consumed by the next full sweep. Before any data has been
// decomposed, events buffer until the first flush runs full CP-ALS.
func (s *Stream) IngestEvents(events []Event) (EventReport, error) {
	if err := s.ensureOpts(); err != nil {
		return EventReport{}, err
	}
	start := time.Now()
	s.rep = EventReport{Events: len(events), Dims: s.rep.Dims}
	rep := &s.rep
	if len(events) > 0 {
		if err := s.checkEvents(events); err != nil {
			return EventReport{}, err
		}
		if s.state == nil {
			s.bufferPreInit(events)
		} else if err := s.applyEvents(events, rep); err != nil {
			return EventReport{}, err
		}
	}
	rep.Pending = s.pendingEvents()
	if s.vopts.SweepEvery > 0 && rep.Pending >= s.vopts.SweepEvery {
		sr, err := s.Flush()
		if err != nil {
			return EventReport{}, err
		}
		rep.Sweep = sr
		rep.Pending = s.pendingEvents()
	}
	rep.Dims = append(rep.Dims[:0], s.liveDims()...)
	rep.Wall = time.Since(start)
	return *rep, nil
}

// Flush runs the drift-backstop full ALS sweep over the events
// accumulated since the last boundary, re-anchoring the stream at the
// result. With nothing pending it is a no-op returning a nil report.
func (s *Stream) Flush() (*StepReport, error) {
	if err := s.ensureOpts(); err != nil {
		return nil, err
	}
	if s.state == nil {
		if len(s.preVals) == 0 {
			return nil, fmt.Errorf("dismastd: Flush before any data")
		}
		b := NewBuilder(s.preDims)
		for e := range s.preVals {
			s.idxBuf = s.idxBuf[:0]
			for m := 0; m < s.preOrder; m++ {
				s.idxBuf = append(s.idxBuf, int(s.preCoords[e*s.preOrder+m]))
			}
			b.Append(s.idxBuf, s.preVals[e])
		}
		x := b.Build()
		if x.NNZ() == 0 {
			return nil, fmt.Errorf("dismastd: pending events cancel to an empty tensor")
		}
		s.preCoords, s.preVals = nil, nil
		return s.advance(nil, x)
	}
	if s.updater == nil || s.updater.Pending() == 0 {
		return nil, nil
	}
	// The sweep snapshot carries exactly the pending entries at the live
	// dims: the step consumes only its complement against the anchor
	// region and its dims, both identical to what a cumulative bulk
	// snapshot of the same data would yield.
	d := s.updater.Delta()
	b := NewBuilder(s.state.Dims)
	for e := 0; e < d.NNZ(); e++ {
		var v float64
		s.idxBuf, v = d.Entry(e, s.idxBuf)
		b.Append(s.idxBuf, v)
	}
	return s.advance(s.updater.Anchor(), b.Build())
}

// advance runs one full-sweep boundary — the shared core of Ingest and
// Flush: CP-ALS init for the first data, then DTD or distributed
// DisMASTD steps seeded by the boundary index, with the event updater
// re-anchored on the result.
func (s *Stream) advance(prev *dtd.State, snapshot *tensor.Tensor) (*StepReport, error) {
	start := time.Now()
	report := &StepReport{Snapshot: s.step}

	if prev == nil {
		st, stats, err := dtd.Init(snapshot, s.dtdOptions(s.vopts.Seed))
		if err != nil {
			return nil, err
		}
		s.state = st
		report.Iters = stats.Iters
		report.Loss = stats.Loss
		report.EntriesTouched = snapshot.NNZ()
	} else if s.vopts.Workers <= 1 {
		st, stats, err := dtd.Step(prev, snapshot, s.dtdOptions(xrand.Derive(s.vopts.Seed, uint64(s.step))))
		if err != nil {
			return nil, err
		}
		s.state = st
		report.Iters = stats.Iters
		report.Loss = stats.Loss
		report.EntriesTouched = stats.ComplementNNZ
	} else {
		if s.session == nil {
			s.session = core.NewSession(s.vopts.Workers)
		}
		st, stats, err := s.session.Step(prev, snapshot, s.coreOptions(xrand.Derive(s.vopts.Seed, uint64(s.step))))
		if err != nil {
			return nil, err
		}
		s.state = st
		report.Iters = stats.Iters
		report.Loss = stats.Loss
		report.EntriesTouched = stats.ComplementNNZ
		report.BytesOnWire = stats.Cluster.TotalBytes()
		report.Imbalance = stats.Imbalance
	}
	if s.updater != nil {
		s.updater.Reset(s.state)
	}
	report.Wall = time.Since(start)
	s.step++
	return report, nil
}

// checkEvents validates a batch: consistent order, non-negative
// coordinates, finite values.
func (s *Stream) checkEvents(events []Event) error {
	order := 0
	switch {
	case s.state != nil:
		order = len(s.state.Dims)
	case s.preOrder > 0:
		order = s.preOrder
	}
	for i := range events {
		ev := &events[i]
		if order == 0 {
			order = len(ev.Coords)
			if order == 0 {
				return fmt.Errorf("dismastd: event %d has no coordinates", i)
			}
		}
		if len(ev.Coords) != order {
			return fmt.Errorf("dismastd: event %d has %d coordinates, stream order is %d", i, len(ev.Coords), order)
		}
		for m, c := range ev.Coords {
			if c < 0 {
				return fmt.Errorf("dismastd: event %d has negative coordinate %d in mode %d", i, c, m)
			}
		}
		if math.IsNaN(ev.Value) || math.IsInf(ev.Value, 0) {
			return fmt.Errorf("dismastd: event %d has non-finite value %v", i, ev.Value)
		}
	}
	if s.state == nil {
		s.preOrder = order
	}
	return nil
}

// bufferPreInit accumulates events arriving before the first
// decomposition exists.
func (s *Stream) bufferPreInit(events []Event) {
	if s.preDims == nil {
		s.preDims = make([]int, s.preOrder)
	}
	for i := range events {
		ev := &events[i]
		for m, c := range ev.Coords {
			if c+1 > s.preDims[m] {
				s.preDims[m] = c + 1
			}
			s.preCoords = append(s.preCoords, int32(c))
		}
		s.preVals = append(s.preVals, ev.Value)
	}
}

// applyEvents grows the live dims when the batch requires it, then
// hands the batch to the row updater.
func (s *Stream) applyEvents(events []Event, rep *EventReport) error {
	if s.updater == nil {
		u, err := dtd.NewUpdater(s.state, s.dtdOptions(s.vopts.Seed))
		if err != nil {
			return err
		}
		s.updater = u
	}
	s.growDims = append(s.growDims[:0], s.state.Dims...)
	grew := false
	for i := range events {
		for m, c := range events[i].Coords {
			if c+1 > s.growDims[m] {
				s.growDims[m] = c + 1
				grew = true
			}
		}
	}
	if grew {
		if err := s.updater.Grow(s.growDims); err != nil {
			return err
		}
		rep.Grew = true
	}
	n := len(s.state.Dims)
	s.evCoords = s.evCoords[:0]
	s.evVals = s.evVals[:0]
	for i := range events {
		for _, c := range events[i].Coords {
			s.evCoords = append(s.evCoords, int32(c))
		}
		s.evVals = append(s.evVals, events[i].Value)
	}
	if len(s.evCoords) != n*len(s.evVals) {
		return fmt.Errorf("dismastd: inconsistent event batch")
	}
	before := s.updater.RowsTouched()
	s.updater.Apply(s.evCoords, s.evVals)
	rep.RowsUpdated = s.updater.RowsTouched() - before
	return nil
}

// pendingEvents returns how many events await the next full sweep.
func (s *Stream) pendingEvents() int {
	if s.state == nil {
		return len(s.preVals)
	}
	if s.updater == nil {
		return 0
	}
	return s.updater.Pending()
}

func (s *Stream) liveDims() []int {
	if s.state != nil {
		return s.state.Dims
	}
	return s.preDims
}

// Factors returns the current factor matrices, one per mode — the live
// serving view, including event-path row updates — or nil before the
// first data. Mutating them affects the stream.
func (s *Stream) Factors() []*Dense {
	if s.state == nil {
		return nil
	}
	return s.state.Factors
}

// Dims returns the current mode sizes: the last ingested snapshot's,
// extended by any growth events since.
func (s *Stream) Dims() []int {
	if s.state == nil {
		return nil
	}
	return s.state.Dims
}

// Snapshots returns how many full-sweep boundaries have completed —
// bulk snapshots ingested plus event flushes.
func (s *Stream) Snapshots() int { return s.step }

// Pending returns how many events are accumulated toward the next full
// sweep.
func (s *Stream) Pending() int { return s.pendingEvents() }

// Predict reconstructs the model value at idx from the current factors.
// It panics before the first data or on out-of-range indices.
func (s *Stream) Predict(idx []int) float64 {
	if s.state == nil {
		panic("dismastd: Predict before any Ingest")
	}
	return Predict(s.state.Factors, idx)
}

// Save checkpoints the stream's decomposition state — flushing any
// pending events first, so the checkpoint reflects a sweep boundary —
// for later resumption with ResumeStream. At least one snapshot or
// event must have been ingested. The envelope records the boundary
// counter, so a resumed stream keeps reporting snapshot indices where
// this one left off.
func (s *Stream) Save(w io.Writer) error {
	if err := s.ensureOpts(); err != nil {
		return err
	}
	if s.pendingEvents() > 0 {
		if _, err := s.Flush(); err != nil {
			return err
		}
	}
	if s.state == nil {
		return fmt.Errorf("dismastd: Save before any Ingest")
	}
	return dtd.WriteStateSteps(w, s.state, uint64(s.step))
}

// ResumeStream restores a stream checkpointed with Save. The options
// must use the same Rank; snapshots ingested next must extend the
// checkpointed dims. Current checkpoints carry the snapshot counter,
// so indices continue where Save left off; a checkpoint from before
// the counter existed resumes at index 1 (the checkpoint counts as
// snapshot 0).
func ResumeStream(r io.Reader, opts Options) (*Stream, error) {
	vopts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	state, steps, err := dtd.ReadStateSteps(r)
	if err != nil {
		return nil, err
	}
	for m, f := range state.Factors {
		if f.Cols != vopts.Rank {
			return nil, fmt.Errorf("dismastd: checkpoint factor %d has rank %d, options say %d", m, f.Cols, vopts.Rank)
		}
	}
	step := int(steps)
	if step == 0 {
		step = 1
	}
	return &Stream{opts: opts, state: state, step: step}, nil
}
