package dismastd

import (
	"fmt"
	"io"
	"time"

	"dismastd/internal/core"
	"dismastd/internal/dtd"
	"dismastd/internal/layout"
	"dismastd/internal/partition"
)

// Options configures a streaming decomposer.
type Options struct {
	// Rank is the number of CP components R. Required.
	Rank int
	// MaxIters bounds the ALS sweeps per snapshot. Default 10, the
	// paper's setting.
	MaxIters int
	// Tol stops a snapshot's iteration when the relative loss change
	// falls below it. Default 1e-6.
	Tol float64
	// ForgettingFactor is the paper's μ ∈ (0, 1]: how strongly the
	// previous decomposition anchors the old region. Default 0.8.
	ForgettingFactor float64
	// Seed makes runs reproducible. Default 1.
	Seed uint64

	// Workers selects the engine: 1 (default) runs the centralized
	// dynamic algorithm (DTD); >1 runs distributed DisMASTD on an
	// in-process cluster of that many workers.
	Workers int
	// Parts is the number of tensor partitions per mode for the
	// distributed engine; it defaults to Workers (the paper's
	// recommended setting).
	Parts int
	// Partitioner chooses GTP or MTP for the distributed engine.
	// Default GTP; MTP balances better on skewed data.
	Partitioner Partitioner

	// Threads sizes the shared-memory pool each engine (and, for the
	// distributed engine, each worker) runs its numeric kernels on.
	// 0 or 1 means sequential. Factors are bitwise identical at every
	// value — parallelism never reorders a floating-point reduction.
	Threads int

	// Layout selects the sparse-kernel representation: "coo" (or "",
	// the default) walks the tensor's coordinate arrays in place;
	// "compiled" compiles each snapshot region once into a mode-sorted,
	// fiber-grouped layout that every sweep then reuses. Factors are
	// bitwise identical under either — the layout changes memory
	// traffic, never floating-point order.
	Layout string
}

func (o Options) withDefaults() (Options, error) {
	if o.Rank <= 0 {
		return o, fmt.Errorf("dismastd: Rank must be positive, got %d", o.Rank)
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	if o.Workers < 0 {
		return o, fmt.Errorf("dismastd: Workers must be positive, got %d", o.Workers)
	}
	if o.Threads < 0 {
		return o, fmt.Errorf("dismastd: Threads must be non-negative, got %d", o.Threads)
	}
	if _, err := layout.ParseKind(o.Layout); err != nil {
		return o, fmt.Errorf("dismastd: %v", err)
	}
	return o, nil
}

// layoutKind returns the parsed Layout; call after withDefaults.
func (o Options) layoutKind() layout.Kind {
	k, _ := layout.ParseKind(o.Layout)
	return k
}

// StepReport summarises what one Ingest call did.
type StepReport struct {
	Snapshot       int           // 0-based snapshot index
	Iters          int           // ALS sweeps performed
	Loss           float64       // √L — the paper's Eq. (4) objective (Eq. 1 for the first snapshot)
	EntriesTouched int           // non-zeros processed: the whole first snapshot, then only each delta
	Wall           time.Duration // processing time of this call
	BytesOnWire    int64         // distributed engine only: measured traffic
	Imbalance      []float64     // distributed engine only: per-mode partition load CV
}

// Stream decomposes a multi-aspect streaming tensor snapshot by
// snapshot. Create with NewStream, feed nested snapshots to Ingest, and
// read the current factors or predictions at any point.
type Stream struct {
	opts  Options
	state *dtd.State
	step  int
}

// NewStream returns an empty streaming decomposer. The options are
// validated at the first Ingest.
func NewStream(opts Options) *Stream { return &Stream{opts: opts} }

// Ingest advances the decomposition to the given snapshot, which must
// contain every previously ingested snapshot as a prefix sub-tensor.
// The first snapshot is decomposed with full CP-ALS; every later one
// costs work proportional to the newly arrived data only.
func (s *Stream) Ingest(snapshot *Tensor) (*StepReport, error) {
	opts, err := s.opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := validateIngestTensor(snapshot); err != nil {
		return nil, err
	}
	start := time.Now()
	report := &StepReport{Snapshot: s.step}

	if s.state == nil {
		st, stats, err := dtd.Init(snapshot, dtd.Options{
			Rank: opts.Rank, MaxIters: opts.MaxIters, Tol: opts.Tol,
			Mu: opts.ForgettingFactor, Seed: opts.Seed,
			Threads: opts.Threads, Layout: opts.layoutKind(),
		})
		if err != nil {
			return nil, err
		}
		s.state = st
		report.Iters = stats.Iters
		report.Loss = stats.Loss
		report.EntriesTouched = snapshot.NNZ()
	} else if opts.Workers <= 1 {
		st, stats, err := dtd.Step(s.state, snapshot, dtd.Options{
			Rank: opts.Rank, MaxIters: opts.MaxIters, Tol: opts.Tol,
			Mu: opts.ForgettingFactor, Seed: opts.Seed + uint64(s.step),
			Threads: opts.Threads, Layout: opts.layoutKind(),
		})
		if err != nil {
			return nil, err
		}
		s.state = st
		report.Iters = stats.Iters
		report.Loss = stats.Loss
		report.EntriesTouched = stats.ComplementNNZ
	} else {
		st, stats, err := core.Step(s.state, snapshot, core.Options{
			Rank: opts.Rank, MaxIters: opts.MaxIters, Tol: opts.Tol,
			Mu: opts.ForgettingFactor, Seed: opts.Seed + uint64(s.step),
			Workers: opts.Workers, Parts: opts.Parts,
			Method:  partition.Method(opts.Partitioner),
			Threads: opts.Threads, Layout: opts.layoutKind(),
		})
		if err != nil {
			return nil, err
		}
		s.state = st
		report.Iters = stats.Iters
		report.Loss = stats.Loss
		report.EntriesTouched = stats.ComplementNNZ
		report.BytesOnWire = stats.Cluster.TotalBytes()
		report.Imbalance = stats.Imbalance
	}
	report.Wall = time.Since(start)
	s.step++
	return report, nil
}

// Factors returns the current factor matrices, one per mode, or nil
// before the first Ingest. Mutating them affects the stream.
func (s *Stream) Factors() []*Dense {
	if s.state == nil {
		return nil
	}
	return s.state.Factors
}

// Dims returns the mode sizes of the last ingested snapshot.
func (s *Stream) Dims() []int {
	if s.state == nil {
		return nil
	}
	return s.state.Dims
}

// Snapshots returns how many snapshots have been ingested.
func (s *Stream) Snapshots() int { return s.step }

// Predict reconstructs the model value at idx from the current factors.
// It panics before the first Ingest or on out-of-range indices.
func (s *Stream) Predict(idx []int) float64 {
	if s.state == nil {
		panic("dismastd: Predict before any Ingest")
	}
	return Predict(s.state.Factors, idx)
}

// Save checkpoints the stream's decomposition state so processing can
// resume later (or in another process) with ResumeStream. At least one
// snapshot must have been ingested.
func (s *Stream) Save(w io.Writer) error {
	if s.state == nil {
		return fmt.Errorf("dismastd: Save before any Ingest")
	}
	return dtd.WriteState(w, s.state)
}

// ResumeStream restores a stream checkpointed with Save. The options
// must use the same Rank; snapshots ingested next must extend the
// checkpointed dims. The restored stream reports snapshot indices
// starting from 1 (the checkpoint counts as snapshot 0).
func ResumeStream(r io.Reader, opts Options) (*Stream, error) {
	vopts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	state, err := dtd.ReadState(r)
	if err != nil {
		return nil, err
	}
	for m, f := range state.Factors {
		if f.Cols != vopts.Rank {
			return nil, fmt.Errorf("dismastd: checkpoint factor %d has rank %d, options say %d", m, f.Cols, vopts.Rank)
		}
	}
	return &Stream{opts: opts, state: state, step: 1}, nil
}
