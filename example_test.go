package dismastd_test

import (
	"fmt"

	"dismastd"
)

// ExampleStream shows the essential streaming loop: nested snapshots in,
// factors and predictions out.
func ExampleStream() {
	// A tiny ⟨user, product, day⟩ rating tensor that grows in every mode.
	full := dismastd.NewBuilder([]int{4, 3, 2})
	for _, e := range [][4]int{
		{0, 0, 0, 5}, {1, 1, 0, 3}, {2, 0, 0, 4}, {0, 1, 0, 2},
		{3, 2, 1, 5}, {1, 2, 1, 4}, {2, 1, 1, 1},
	} {
		full.Append([]int{e[0], e[1], e[2]}, float64(e[3]))
	}
	x := full.Build()

	s := dismastd.NewStream(dismastd.Options{Rank: 2, MaxIters: 20, Seed: 1})
	if _, err := s.Ingest(x.Prefix([]int{3, 2, 1})); err != nil { // day 1
		panic(err)
	}
	rep, err := s.Ingest(x) // day 2: grew in users, products, and days
	if err != nil {
		panic(err)
	}
	fmt.Printf("snapshots=%d touched=%d dims=%v\n", s.Snapshots(), rep.EntriesTouched, s.Dims())
	// Output:
	// snapshots=2 touched=3 dims=[4 3 2]
}

// ExampleDecompose runs a one-shot static decomposition.
func ExampleDecompose() {
	b := dismastd.NewBuilder([]int{3, 3, 3})
	for i := 0; i < 3; i++ {
		b.Append([]int{i, i, i}, 1) // a perfectly rank-1-per-slice diagonal
	}
	res, err := dismastd.Decompose(b.Build(), 3, 200)
	if err != nil {
		panic(err)
	}
	fmt.Printf("modes=%d fit>0.99=%v\n", len(res.Factors), res.Fit > 0.99)
	// Output:
	// modes=3 fit>0.99=true
}

// ExamplePartitionSlices demonstrates the two load-balancing heuristics
// on a skewed slice histogram.
func ExamplePartitionSlices() {
	weights := []int64{90, 10, 10, 10, 10, 10, 10, 10} // one hot slice
	_, gtpLoads := dismastd.PartitionSlices(weights, 2, dismastd.GTP)
	_, mtpLoads := dismastd.PartitionSlices(weights, 2, dismastd.MTP)
	fmt.Printf("GTP imbalance=%.2f MTP imbalance=%.2f\n",
		dismastd.Imbalance(gtpLoads), dismastd.Imbalance(mtpLoads))
	// Output:
	// GTP imbalance=0.12 MTP imbalance=0.12
}
